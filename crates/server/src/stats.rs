//! Engine observability: per-method query counters, cache hit/miss rates,
//! latency percentiles, timeouts, and connection gauges.
//!
//! Everything is lock-free: counters are atomics and the latency histograms
//! are [`pdb_obs::AtomicHistogram`]s (log₂ microsecond buckets), so the
//! request path never blocks on — and can never poison — an observability
//! lock. Percentiles interpolate within their bucket (see `pdb_obs::hist`),
//! fixing the old bucket-upper-bound reporting that overstated p50/p99 by up
//! to 2×.
//!
//! `Stats` is **per serving instance** (tests rely on fresh instances
//! starting at zero); the process-global Prometheus registry is a separate
//! layer, and [`Stats::render_prometheus`] renders this instance's counters
//! in the same exposition format so the server's `metrics` command can emit
//! both.

use pdb_core::Method;
use pdb_obs::{AtomicHistogram, ExpositionBuilder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Point-in-time view-manager gauges injected into the stats payload (the
/// manager lives behind its own lock; the render caller snapshots it).
#[derive(Clone, Copy, Debug, Default)]
pub struct ViewsSnapshot {
    /// Registered views.
    pub views: usize,
    /// Materialized rows across all views.
    pub rows: usize,
    /// Probability updates absorbed by incremental circuit re-evaluation.
    pub incremental: u64,
    /// Full view (re)compilations, including initial builds.
    pub recompiles: u64,
}

/// Point-in-time thread-pool gauges injected into the stats payload (taken
/// from `pdb_par::Pool::stats` by the render caller).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolSnapshot {
    /// Configured parallelism (`PROBDB_THREADS` / `--threads`).
    pub threads: usize,
    /// Tasks executed since the pool was created.
    pub jobs: u64,
    /// Tasks that ran on a thread other than the one that queued them.
    pub steals: u64,
    /// Fraction of available thread-time spent executing tasks, `[0, 1]`.
    pub utilization: f64,
}

impl From<pdb_par::PoolStats> for PoolSnapshot {
    fn from(stats: pdb_par::PoolStats) -> PoolSnapshot {
        PoolSnapshot {
            threads: stats.threads,
            jobs: stats.jobs,
            steals: stats.steals,
            utilization: stats.utilization(),
        }
    }
}

/// Point-in-time kernel counters injected into the stats payload (taken
/// from `pdb_kernel::stats()` by the render caller): how much evaluation
/// runs through flattened circuit programs and how well the batched path
/// amortizes program bytes across evaluations.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelSnapshot {
    /// Circuits lowered into flat programs since process start.
    pub flattened: u64,
    /// Flat-program evaluations (each batched lane counts as one).
    pub evals: u64,
    /// Batched evaluation calls (each covering many lanes).
    pub batched: u64,
    /// Program bytes read per evaluation, amortized (batched calls charge
    /// their program once across all lanes).
    pub bytes_per_eval: u64,
}

impl From<pdb_kernel::KernelStats> for KernelSnapshot {
    fn from(stats: pdb_kernel::KernelStats) -> KernelSnapshot {
        KernelSnapshot {
            flattened: stats.flattened,
            evals: stats.evals,
            batched: stats.batched_evals,
            bytes_per_eval: stats.bytes_per_eval(),
        }
    }
}

/// Shared counters for one serving instance.
#[derive(Default)]
pub struct Stats {
    lifted: AtomicU64,
    safe_plan: AtomicU64,
    grounded: AtomicU64,
    approximate: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    active_connections: AtomicU64,
    total_connections: AtomicU64,
    latency: AtomicHistogram,
    /// Latencies of `view create` / `view refresh` commands (the cost of
    /// materialization, kept apart from the query path).
    view_refresh_latency: AtomicHistogram,
}

impl Stats {
    /// Counts one answered query by the engine that produced it.
    pub fn record_method(&self, m: Method) {
        let counter = match m {
            Method::Lifted => &self.lifted,
            Method::SafePlan => &self.safe_plan,
            Method::Grounded => &self.grounded,
            Method::Approximate => &self.approximate,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed query.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one wall-clock timeout (query degraded to approximation).
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a result-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a result-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query's end-to-end latency. Lock-free.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record_duration(latency);
    }

    /// Records one view-materialization latency (`view create`/`refresh`).
    pub fn record_view_refresh(&self, latency: Duration) {
        self.view_refresh_latency.record_duration(latency);
    }

    /// Marks a connection opened.
    pub fn connection_opened(&self) {
        self.active_connections.fetch_add(1, Ordering::Relaxed);
        self.total_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a connection closed.
    pub fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Timeouts so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Renders the `stats` command payload.
    pub fn render(
        &self,
        cache_len: usize,
        cache_capacity: usize,
        views: ViewsSnapshot,
        pool: PoolSnapshot,
        kernel: KernelSnapshot,
    ) -> String {
        let (lifted, safe_plan, grounded, approximate, errors) = (
            self.lifted.load(Ordering::Relaxed),
            self.safe_plan.load(Ordering::Relaxed),
            self.grounded.load(Ordering::Relaxed),
            self.approximate.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        );
        let total = lifted + safe_plan + grounded + approximate;
        let (hits, misses) = (self.cache_hits(), self.cache_misses());
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let maintenance = views.incremental + views.recompiles;
        let incremental_ratio = if maintenance == 0 {
            0.0
        } else {
            views.incremental as f64 / maintenance as f64
        };
        let lat = self.latency.snapshot();
        let vlat = self.view_refresh_latency.snapshot();
        format!(
            "queries: total={total} lifted={lifted} safe_plan={safe_plan} \
             grounded={grounded} approximate={approximate} errors={errors}\n\
             cache: hits={hits} misses={misses} hit_rate={hit_rate:.3} \
             entries={cache_len} capacity={cache_capacity}\n\
             latency_us: p50={} p95={} max={} samples={}\n\
             views: count={} rows={} incremental={} recompiles={} \
             incremental_ratio={incremental_ratio:.3}\n\
             view_refresh_us: p50={} p95={} max={} samples={}\n\
             pool: threads={} jobs={} steals={} utilization={:.3}\n\
             kernel: flattened={} evals={} batched={} bytes_per_eval={}\n\
             timeouts: {}\n\
             connections: active={} total={}\n",
            lat.quantile(0.50),
            lat.quantile(0.95),
            lat.max,
            lat.count,
            views.views,
            views.rows,
            views.incremental,
            views.recompiles,
            vlat.quantile(0.50),
            vlat.quantile(0.95),
            vlat.max,
            vlat.count,
            pool.threads,
            pool.jobs,
            pool.steals,
            pool.utilization,
            kernel.flattened,
            kernel.evals,
            kernel.batched,
            kernel.bytes_per_eval,
            self.timeouts(),
            self.active_connections.load(Ordering::Relaxed),
            self.total_connections.load(Ordering::Relaxed),
        )
    }

    /// Renders this instance's counters as Prometheus text exposition (the
    /// `pdb_server_*` families). The server's `metrics` command appends the
    /// process-global registry ([`pdb_obs::render`]) after this.
    pub fn render_prometheus(&self, cache_len: usize, cache_capacity: usize) -> String {
        let mut b = ExpositionBuilder::new();
        b.counter_samples(
            "pdb_server_queries_total",
            "queries answered, by engine",
            &[
                ("{engine=\"lifted\"}", self.lifted.load(Ordering::Relaxed)),
                (
                    "{engine=\"safe_plan\"}",
                    self.safe_plan.load(Ordering::Relaxed),
                ),
                (
                    "{engine=\"grounded\"}",
                    self.grounded.load(Ordering::Relaxed),
                ),
                (
                    "{engine=\"approximate\"}",
                    self.approximate.load(Ordering::Relaxed),
                ),
            ],
        );
        b.counter(
            "pdb_server_query_errors_total",
            "queries that failed",
            self.errors.load(Ordering::Relaxed),
        );
        b.counter(
            "pdb_server_timeouts_total",
            "queries degraded to the approximate engine by timeout",
            self.timeouts(),
        );
        b.counter_samples(
            "pdb_server_cache_lookups_total",
            "result-cache probes, by outcome",
            &[
                ("{outcome=\"hit\"}", self.cache_hits()),
                ("{outcome=\"miss\"}", self.cache_misses()),
            ],
        );
        b.gauge(
            "pdb_server_cache_entries",
            "live result-cache entries",
            cache_len as f64,
        );
        b.gauge(
            "pdb_server_cache_capacity",
            "result-cache capacity",
            cache_capacity as f64,
        );
        b.gauge(
            "pdb_server_connections_active",
            "currently open client connections",
            self.active_connections.load(Ordering::Relaxed) as f64,
        );
        b.counter(
            "pdb_server_connections_total",
            "client connections accepted",
            self.total_connections.load(Ordering::Relaxed),
        );
        b.histogram(
            "pdb_server_query_latency_us",
            "end-to-end query latency, microseconds",
            &self.latency.snapshot(),
        );
        b.histogram(
            "pdb_server_view_refresh_us",
            "view create/refresh latency, microseconds",
            &self.view_refresh_latency.snapshot(),
        );
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = AtomicHistogram::new();
        for us in [1u64, 2, 3, 10, 100, 1000, 5000] {
            h.record_duration(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 5000);
        // Exact pins (the satellite fix): rank 3.5 lands in bucket [8,16),
        // half-way → 12. The old upper-bound code reported 15.
        assert_eq!(h.quantile(0.5), 12);
        // p95 interpolates in [4096,8192) to 6758, capped at the max.
        assert_eq!(h.quantile(0.95), 5000);
        assert!(h.quantile(0.5) <= h.quantile(0.95));
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_empty_and_zero() {
        let h = AtomicHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record_duration(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0, "capped at observed max");
    }

    #[test]
    fn render_shows_all_sections() {
        let s = Stats::default();
        s.record_method(Method::Lifted);
        s.record_method(Method::Grounded);
        s.record_method(Method::Approximate);
        s.record_cache_hit();
        s.record_cache_miss();
        s.record_timeout();
        s.record_latency(Duration::from_micros(120));
        s.record_view_refresh(Duration::from_micros(80));
        s.connection_opened();
        let text = s.render(
            5,
            1024,
            ViewsSnapshot {
                views: 2,
                rows: 7,
                incremental: 3,
                recompiles: 1,
            },
            PoolSnapshot {
                threads: 4,
                jobs: 12,
                steals: 2,
                utilization: 0.25,
            },
            KernelSnapshot {
                flattened: 6,
                evals: 130,
                batched: 2,
                bytes_per_eval: 48,
            },
        );
        for needle in [
            "total=3",
            "lifted=1",
            "safe_plan=0",
            "grounded=1",
            "approximate=1",
            "hits=1",
            "misses=1",
            "hit_rate=0.500",
            "entries=5",
            "capacity=1024",
            "views: count=2 rows=7 incremental=3 recompiles=1",
            "incremental_ratio=0.750",
            "view_refresh_us:",
            "pool: threads=4 jobs=12 steals=2 utilization=0.250",
            "kernel: flattened=6 evals=130 batched=2 bytes_per_eval=48",
            "timeouts: 1",
            "active=1 total=1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn prometheus_render_is_valid_and_per_instance() {
        let s = Stats::default();
        s.record_method(Method::Lifted);
        s.record_cache_hit();
        s.record_latency(Duration::from_micros(100));
        s.connection_opened();
        let text = s.render_prometheus(3, 256);
        let summary = pdb_obs::expo::validate(&text).expect("must be valid exposition");
        assert_eq!(
            summary.kind("pdb_server_queries_total"),
            Some(pdb_obs::expo::FamilyKind::Counter)
        );
        assert_eq!(
            summary.kind("pdb_server_connections_active"),
            Some(pdb_obs::expo::FamilyKind::Gauge)
        );
        assert_eq!(
            summary.kind("pdb_server_query_latency_us"),
            Some(pdb_obs::expo::FamilyKind::Histogram)
        );
        assert!(text.contains("pdb_server_queries_total{engine=\"lifted\"} 1"));
        assert!(text.contains("pdb_server_queries_total{engine=\"grounded\"} 0"));
        assert!(text.contains("pdb_server_cache_lookups_total{outcome=\"hit\"} 1"));
        assert!(text.contains("pdb_server_query_latency_us_count 1"));

        // A fresh instance starts at zero (per-instance semantics).
        let fresh = Stats::default();
        assert!(fresh
            .render_prometheus(0, 0)
            .contains("pdb_server_queries_total{engine=\"lifted\"} 0"));
    }
}
