//! # pdb-server — a concurrent query service for probdb
//!
//! The serving layer the ROADMAP's "heavy traffic" north star asks for:
//! everything the interactive CLI can do, exposed over TCP to many
//! concurrent sessions, with the work the engine cascade already does
//! amortized through a result cache and surfaced through counters.
//!
//! The subsystem is three layers, each usable on its own:
//!
//! - [`protocol`] — the line protocol (commands, parser, answer
//!   formatters, wire framing) shared with `probdb-cli`, so both front ends
//!   accept the same language and print byte-identical answers;
//! - [`service`] — a thread-safe engine façade: snapshot reads over
//!   `RwLock<Arc<ProbDb>>`, copy-on-write mutation, a versioned LRU result
//!   cache ([`cache`]), wall-clock timeouts degrading to the approximate
//!   engine, and observability counters ([`stats`]);
//! - [`server`] — the TCP worker pool (`probdb-serve` binary in the root
//!   crate).
//!
//! ```no_run
//! use pdb_server::{serve, ServerOptions};
//!
//! let handle = serve(pdb_core::ProbDb::new(), ServerOptions::default()).unwrap();
//! println!("listening on {}", handle.local_addr());
//! handle.join();
//! ```

pub mod cache;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;

pub use server::{serve, serve_service, ServerHandle, ServerOptions};
pub use service::{Service, ServiceOptions};
