//! The TCP front end: a fixed-size worker pool accepting connections and
//! speaking the line protocol from [`crate::protocol`].
//!
//! Each worker owns at most one connection at a time (classic
//! pool-of-acceptors: every worker blocks in `accept` on the shared
//! listener, so up to `workers` sessions run concurrently and excess
//! connections queue in the kernel backlog). Commands within a session are
//! processed strictly in order, which is what makes "insert, then query on
//! the same connection" read-your-writes — the concurrency integration test
//! leans on that to prove no stale cache read survives a mutation.

use crate::protocol::write_framed;
use crate::service::{Service, ServiceOptions};
use pdb_core::ProbDb;
use pdb_replica::{write_frame, Frame};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Bind address (use port 0 to let the OS pick — handy in tests).
    pub addr: String,
    /// Worker threads = maximum concurrent sessions.
    pub workers: usize,
    /// See [`ServiceOptions::query_timeout`].
    pub query_timeout: Duration,
    /// See [`ServiceOptions::cache_capacity`].
    pub cache_capacity: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            query_timeout: Duration::from_secs(10),
            cache_capacity: 1024,
        }
    }
}

/// A running server; dropping it (or calling [`ServerHandle::shutdown`])
/// stops the workers and prints a final stats summary to stderr.
pub struct ServerHandle {
    local_addr: SocketAddr,
    service: Service,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolved port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying service (stats, cache introspection).
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// True once every worker has exited — i.e. after a `shutdown` command
    /// or a signal-initiated stop has fully drained. The `probdb-serve`
    /// binary polls this so it can flush the store and exit.
    pub fn is_finished(&self) -> bool {
        self.workers.iter().all(JoinHandle::is_finished)
    }

    /// Stops accepting, unblocks and joins every worker, prints the final
    /// observability summary.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Blocks until every worker exits (i.e. forever, absent a shutdown
    /// from another handle or thread). Used by the `probdb-serve` binary.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.print_summary();
    }

    fn shutdown_impl(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake workers parked in accept() with throwaway connections.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.print_summary();
    }

    fn print_summary(&self) {
        eprintln!(
            "pdb-server summary ({}):\n{}",
            self.local_addr,
            self.service.stats_text()
        );
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Binds and starts serving `db` according to `opts` (no durability).
pub fn serve(db: ProbDb, opts: ServerOptions) -> std::io::Result<ServerHandle> {
    let service = Service::new(
        db,
        ServiceOptions {
            query_timeout: opts.query_timeout,
            cache_capacity: opts.cache_capacity,
            ..ServiceOptions::default()
        },
    );
    serve_service(service, opts)
}

/// Binds and starts serving a pre-built [`Service`] — the entry point for
/// `probdb-serve --data-dir`, where the service wraps recovered state and a
/// durable store. The service's `shutdown` command is wired to stop this
/// server: it sets the stop flag and wakes the acceptors, so a client
/// issuing `shutdown` drains every session and [`ServerHandle::is_finished`]
/// flips once the workers exit.
pub fn serve_service(service: Service, opts: ServerOptions) -> std::io::Result<ServerHandle> {
    let listener = bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    let listener = Arc::new(listener);
    let stop = Arc::new(AtomicBool::new(false));
    let hook_stop = Arc::clone(&stop);
    let hook_workers = opts.workers.max(1);
    service.set_shutdown_hook(move || {
        hook_stop.store(true, Ordering::SeqCst);
        // Wake workers parked in accept() with throwaway connections (the
        // same trick ServerHandle::shutdown uses).
        for _ in 0..hook_workers {
            let _ = TcpStream::connect(local_addr);
        }
    });
    let mut workers = Vec::with_capacity(opts.workers.max(1));
    for i in 0..opts.workers.max(1) {
        let listener = Arc::clone(&listener);
        let worker_stop = Arc::clone(&stop);
        let service = service.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("pdb-worker-{i}"))
            .spawn(move || worker_loop(&listener, &worker_stop, &service));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(e) => {
                // Unwind the partially-started pool instead of panicking:
                // each running worker needs one wake-up connection to leave
                // `accept`, then the bind error surfaces to the caller.
                stop.store(true, Ordering::SeqCst);
                for _ in &workers {
                    let _ = TcpStream::connect(local_addr);
                }
                for handle in workers {
                    let _ = handle.join();
                }
                return Err(e);
            }
        }
    }
    Ok(ServerHandle {
        local_addr,
        service,
        stop,
        workers,
    })
}

fn bind(addr: &str) -> std::io::Result<TcpListener> {
    let mut last_err = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpListener::bind(resolved) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    }))
}

fn worker_loop(listener: &TcpListener, stop: &AtomicBool, service: &Service) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from shutdown
        }
        service.stats().connection_opened();
        // A panic escaping a session must not kill the worker: the pool is
        // fixed-size, so every lost worker permanently shrinks capacity.
        // `Service::handle_line` degrades instead of panicking (invariant
        // P1), but engine internals are a large surface — contain the blast
        // radius to the one connection either way.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, stop, service)
        }));
        if outcome.is_err() {
            service.stats().record_error();
        }
        service.stats().connection_closed();
    }
}

/// How often a blocked session re-checks the stop flag. Bounds shutdown
/// latency even with idle clients still connected.
const STOP_POLL: Duration = Duration::from_millis(100);

fn handle_connection(
    stream: TcpStream,
    stop: &AtomicBool,
    service: &Service,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(STOP_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let Some(line) = read_line_interruptible(&mut reader, stop)? else {
            return Ok(()); // client hung up or server stopping
        };
        if let Some(from_lsn) = parse_replicate(&line) {
            // The session stops speaking the line protocol: it becomes a
            // one-way replication stream until the replica hangs up, falls
            // behind, or the server stops. A bounded write timeout keeps a
            // wedged replica from parking this worker forever.
            writer
                .get_ref()
                .set_write_timeout(Some(Duration::from_secs(5)))
                .ok();
            return serve_replication(&mut writer, stop, service, from_lsn);
        }
        let (response, keep_open) = service.handle_line(&line);
        write_framed(&mut writer, &response)?;
        if !keep_open {
            return Ok(());
        }
    }
}

/// Recognizes the replication handshake line `replicate from <lsn>`.
/// Malformed variants fall through to the normal parser (and its error).
fn parse_replicate(line: &str) -> Option<u64> {
    line.trim()
        .strip_prefix("replicate from ")?
        .trim()
        .parse()
        .ok()
}

/// Streams frames to one replica: catch-up (snapshot or WAL tail) first,
/// then live records from the feed, heartbeats when idle, and a shutdown
/// frame on graceful drain. Returns when the replica is gone, evicted for
/// falling behind, or the server stops.
fn serve_replication(
    writer: &mut BufWriter<TcpStream>,
    stop: &AtomicBool,
    service: &Service,
    from_lsn: u64,
) -> std::io::Result<()> {
    let (catchup, feed) = match service.replication_sync(from_lsn) {
        Ok(plan) => plan,
        Err(e) => {
            write_frame(writer, &Frame::Deny(e))?;
            return writer.flush();
        }
    };
    let Some(hub) = service.replication() else {
        return Ok(()); // unreachable: replication_sync already checked
    };
    for frame in &catchup {
        write_frame(writer, frame)?;
    }
    writer.flush()?;
    loop {
        if stop.load(Ordering::SeqCst) || service.stopping() {
            // Signal-initiated drain: tell the replica explicitly so it
            // marks the primary down without waiting out its heartbeat
            // timeout (the `shutdown` command also broadcasts via the hub).
            let _ = write_frame(writer, &Frame::Shutdown);
            let _ = writer.flush();
            return Ok(());
        }
        match feed.recv_timeout(hub.heartbeat()) {
            Ok(Some(frame)) => {
                let closing = matches!(frame, Frame::Shutdown);
                write_frame(writer, &frame)?;
                writer.flush()?;
                if closing {
                    return Ok(());
                }
            }
            Ok(None) => {
                write_frame(
                    writer,
                    &Frame::Heartbeat {
                        next_lsn: hub.next_lsn(),
                    },
                )?;
                writer.flush()?;
            }
            // Evicted for falling behind: close; the replica reconnects
            // and resumes (or re-bootstraps) from its own LSN.
            Err(pdb_replica::FeedClosed) => return Ok(()),
        }
    }
}

/// Reads one `\n`-terminated line, polling `stop` on read timeouts. Uses
/// `fill_buf`/`consume` rather than `read_line` so a timeout mid-line loses
/// no buffered bytes (`read_line` leaves the buffer unspecified on error).
/// Returns `None` on EOF or server stop.
fn read_line_interruptible(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let available = match reader.fill_buf() {
            Ok([]) => {
                // EOF: serve a final unterminated line if one is pending.
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
                };
            }
            Ok(bytes) => bytes,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend(available.iter().take(pos).copied());
                reader.consume(pos + 1);
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let n = available.len();
                line.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_framed;
    use std::io::Write;

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
        writeln!(writer, "{line}").unwrap();
        read_framed(reader).unwrap().expect("response")
    }

    fn test_server() -> ServerHandle {
        serve(
            ProbDb::new(),
            ServerOptions {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                query_timeout: Duration::ZERO,
                cache_capacity: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn serves_the_cli_protocol_over_tcp() {
        let server = test_server();
        let (mut reader, mut writer) = connect(server.local_addr());
        assert_eq!(roundtrip(&mut reader, &mut writer, "insert R 1 0.5"), "");
        assert_eq!(roundtrip(&mut reader, &mut writer, "insert S 1 2 0.8"), "");
        let resp = roundtrip(
            &mut reader,
            &mut writer,
            "query exists x. exists y. R(x) & S(x,y)",
        );
        assert_eq!(resp, "p = 0.400000  (engine: Lifted)\n");
        let stats = roundtrip(&mut reader, &mut writer, "stats");
        assert!(stats.contains("lifted=1"), "{stats}");
        assert!(stats.contains("active=1 total=1"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn quit_closes_only_that_session() {
        let server = test_server();
        let (mut r1, mut w1) = connect(server.local_addr());
        let (mut r2, mut w2) = connect(server.local_addr());
        roundtrip(&mut r1, &mut w1, "insert R 7 0.25");
        writeln!(w1, "quit").unwrap();
        // Session 1 is closed: its stream reads EOF after the quit frame.
        assert_eq!(read_framed(&mut r1).unwrap(), Some(String::new()));
        assert_eq!(read_framed(&mut r1).unwrap(), None);
        // Session 2 still works and sees session 1's insert.
        let resp = roundtrip(&mut r2, &mut w2, "query exists x. R(x)");
        assert_eq!(resp, "p = 0.250000  (engine: Lifted)\n");
        server.shutdown();
    }

    #[test]
    fn parse_errors_do_not_kill_the_session() {
        let server = test_server();
        let (mut reader, mut writer) = connect(server.local_addr());
        let resp = roundtrip(&mut reader, &mut writer, "frobnicate 12");
        assert!(resp.starts_with("error: unknown command"), "{resp}");
        let resp = roundtrip(&mut reader, &mut writer, "help");
        assert!(resp.contains("commands:"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn shutdown_command_drains_the_server() {
        let server = test_server();
        let (mut reader, mut writer) = connect(server.local_addr());
        roundtrip(&mut reader, &mut writer, "insert R 1 0.5");
        assert!(!server.is_finished());
        let resp = roundtrip(&mut reader, &mut writer, "shutdown");
        assert_eq!(resp, "shutting down\n");
        assert!(server.service().stopping());
        // Every worker exits (the command's own session closed; the others
        // were woken by the hook).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !server.is_finished() {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never drained"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.join();
    }

    #[test]
    fn shutdown_terminates_workers() {
        let server = test_server();
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown either the connect fails or the connection is
        // closed without service; a fresh roundtrip must not succeed.
        if let Ok(stream) = TcpStream::connect(addr) {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let _ = writeln!(writer, "help");
            let response = read_framed(&mut reader).unwrap();
            assert_eq!(response, None, "worker answered after shutdown");
        }
    }
}
