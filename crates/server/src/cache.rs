//! A small LRU cache for query results, keyed by
//! `(kind, normalized query, db version)`.
//!
//! Versioned keys make invalidation free: an `insert`/`domain` bumps the
//! [`pdb_core::ProbDb::version`] counter, so every entry computed against
//! the old contents simply stops matching. Stale entries are then reclaimed
//! by ordinary LRU pressure rather than by an eager scan.
//!
//! Recency is tracked with a `BTreeMap<tick, key>` side index: `get` and
//! `insert` are `O(log n)`, eviction pops the least-recent tick. That is
//! deliberately the simplest structure that is obviously correct under a
//! mutex; at the default capacity (1024 entries) the `log n` is ~10.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries; a capacity of 0
    /// is clamped to 1 (a zero-capacity LRU cannot satisfy its own insert
    /// postcondition, and the request path must not assert).
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let (_, stamp) = self.map.get_mut(key)?;
        self.recency.remove(&std::mem::replace(stamp, tick));
        self.recency.insert(tick, key.clone());
        self.map.get(key).map(|(v, _)| v)
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((_, evicted)) = self.recency.pop_first() {
                self.map.remove(&evicted);
            }
        }
        self.map.insert(key.clone(), (value, self.tick));
        self.recency.insert(self.tick, key);
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut c = LruCache::new(4);
        assert!(c.is_empty());
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "b" is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "LRU entry evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh: "b" becomes LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert(1u64, "x");
        c.insert(2u64, "y");
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(&"y"));
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(8);
        for i in 0..8u64 {
            c.insert(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&3), None);
    }

    #[test]
    fn stress_against_reference_model() {
        // Cross-check against a straightforward O(n) reference LRU.
        let mut c = LruCache::new(8);
        let mut model: Vec<(u64, u64)> = Vec::new(); // front = most recent
        let mut state = 0x1234_5678_u64;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 24;
            if state & 1 == 0 {
                // insert
                c.insert(key, key * 10);
                model.retain(|(k, _)| *k != key);
                model.insert(0, (key, key * 10));
                model.truncate(8);
            } else {
                let got = c.get(&key).copied();
                let want = model.iter().position(|(k, _)| *k == key).map(|i| {
                    let e = model.remove(i);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(got, want, "key {key}");
            }
            assert_eq!(c.len(), model.len());
        }
    }
}
