//! The probdb command protocol, shared verbatim by the interactive CLI
//! (`probdb-cli`) and the TCP server (`probdb-serve`).
//!
//! One command per line, answers as plain text. Extracting the parser and
//! the answer formatters here guarantees the two front ends accept the same
//! language and render byte-identical results — the server-concurrency
//! integration test relies on that to compare wire responses against
//! single-threaded evaluation.
//!
//! ## Wire framing (server only)
//!
//! The CLI is a REPL, so it needs no framing. Over TCP the server ends each
//! response with a line containing a single `.`; response lines that consist
//! of exactly `.` are escaped as `..` (SMTP-style dot-stuffing). See
//! [`write_framed`] / [`read_framed`].

use pdb_core::{Answer, AnswerTuple, Complexity};
use pdb_views::{RefreshOutcome, View};
use std::io::{BufRead, Write};

/// One parsed shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `insert <rel> <c1> … <ck> <prob>`
    Insert {
        /// Relation name (declared on first use).
        relation: String,
        /// Constant tuple.
        tuple: Vec<u64>,
        /// Marginal probability of the tuple.
        prob: f64,
    },
    /// `update <rel> <c1> … <ck> <prob>` — change an **existing** tuple's
    /// probability (never creates a tuple; materialized views absorb this
    /// incrementally).
    Update {
        /// Relation name.
        relation: String,
        /// Constant tuple (must already be a possible tuple).
        tuple: Vec<u64>,
        /// The new marginal probability.
        prob: f64,
    },
    /// `view …` — materialized-view management.
    View(ViewCommand),
    /// `domain <c1> … <ck>` — extend the domain explicitly.
    Domain(Vec<u64>),
    /// `query <fo sentence>`
    Query(String),
    /// `answers <v1,v2,…> : <cq>` — non-Boolean query.
    Answers {
        /// Head variables, in output order.
        head: Vec<String>,
        /// The conjunctive-query body.
        cq: String,
    },
    /// `classify <ucq>`
    Classify(String),
    /// `open <lambda> <monotone fo>` — open-world interval.
    OpenWorld {
        /// λ-completion probability for unlisted tuples.
        lambda: f64,
        /// The monotone sentence.
        query: String,
    },
    /// `show` — dump the database.
    Show,
    /// `stats` — engine observability counters (server; the CLI keeps no
    /// counters and says so).
    Stats,
    /// `metrics` — Prometheus text exposition of every registered counter,
    /// gauge, and histogram (server, store, replica, kernel, views, pool).
    Metrics,
    /// `explain analyze <query>` — run the query with tracing enabled and
    /// render the span tree (per-stage timings, chosen engine).
    ExplainAnalyze(String),
    /// `trace last [--json]` — the most recent captured span tree, as
    /// indented text or Chrome trace-format JSON.
    TraceLast {
        /// Emit Chrome `chrome://tracing` JSON instead of the text tree.
        json: bool,
    },
    /// `slowlog` — dump the ring buffer of queries slower than the
    /// `--slowlog-threshold` (server).
    Slowlog,
    /// `source <path>` — run commands from a file (CLI only; the server
    /// refuses to read its own filesystem on behalf of clients).
    Source(String),
    /// `save <path>` — write a snapshot of the database + views (CLI only;
    /// same filesystem policy as `source`).
    Save(String),
    /// `open <path>` — replace the session state with a saved snapshot
    /// (CLI only). Distinguished from `open <λ> <sentence>` by having a
    /// single non-numeric token.
    Open(String),
    /// `shutdown` — gracefully stop the server: drain in-flight requests
    /// and flush/fsync the write-ahead log before exiting.
    Shutdown,
    /// `wal inspect <path>` — decode a write-ahead log (a `wal` file or a
    /// data directory containing one) and print its LSN range, records,
    /// and any truncation point (CLI only; debugging aid for replication).
    WalInspect(String),
    /// `help`
    Help,
    /// `quit` / `exit`
    Quit,
    /// Blank line or comment.
    Nothing,
}

/// A materialized-view subcommand (`view create|refresh|drop|list|show`).
#[derive(Debug, Clone, PartialEq)]
pub enum ViewCommand {
    /// `view create <name> query <sentence>` or
    /// `view create <name> answers <v1,v2,…> : <cq>`.
    Create {
        /// The view's name.
        name: String,
        /// What it materializes.
        query: ViewQueryText,
    },
    /// `view refresh [<name>]` — one view, or every view when omitted.
    Refresh {
        /// The view to refresh; `None` refreshes all.
        name: Option<String>,
    },
    /// `view drop <name>`.
    Drop {
        /// The view to unregister.
        name: String,
    },
    /// `view list`.
    List,
    /// `view show <name>` — print the materialized rows.
    Show {
        /// The view to print.
        name: String,
    },
}

/// The query payload of `view create` (same sub-languages as `query` /
/// `answers`).
#[derive(Debug, Clone, PartialEq)]
pub enum ViewQueryText {
    /// A Boolean sentence.
    Boolean(String),
    /// Head variables + CQ body.
    Answers {
        /// Head variables, in output order.
        head: Vec<String>,
        /// The conjunctive-query body.
        cq: String,
    },
}

fn parse_view_command(rest: &str) -> Result<ViewCommand, String> {
    const USAGE: &str = "usage: view create|refresh|drop|list|show …";
    let (sub, rest) = match rest.split_once(char::is_whitespace) {
        Some((s, r)) => (s, r.trim()),
        None => (rest, ""),
    };
    match sub {
        "create" => {
            let (name, spec) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "usage: view create <name> query|answers …".to_string())?;
            let spec = spec.trim();
            let (kind, payload) = match spec.split_once(char::is_whitespace) {
                Some((k, p)) => (k, p.trim()),
                None => (spec, ""),
            };
            let query = match kind {
                "query" => {
                    if payload.is_empty() {
                        return Err("usage: view create <name> query <sentence>".into());
                    }
                    ViewQueryText::Boolean(payload.to_string())
                }
                "answers" => {
                    let (head_vars, cq) = payload.split_once(':').ok_or_else(|| {
                        "usage: view create <name> answers <v1,v2,…> : <cq>".to_string()
                    })?;
                    let head: Vec<String> = head_vars
                        .split(',')
                        .map(|v| v.trim().to_string())
                        .filter(|v| !v.is_empty())
                        .collect();
                    if head.is_empty() {
                        return Err("view create … answers needs at least one head variable".into());
                    }
                    if cq.trim().is_empty() {
                        return Err("view create … answers needs a query body after `:`".into());
                    }
                    ViewQueryText::Answers {
                        head,
                        cq: cq.trim().to_string(),
                    }
                }
                other => {
                    return Err(format!(
                        "view create expects `query` or `answers`, got {other:?}"
                    ))
                }
            };
            Ok(ViewCommand::Create {
                name: name.to_string(),
                query,
            })
        }
        "refresh" => Ok(ViewCommand::Refresh {
            name: (!rest.is_empty()).then(|| rest.to_string()),
        }),
        "drop" => {
            if rest.is_empty() {
                return Err("usage: view drop <name>".into());
            }
            Ok(ViewCommand::Drop {
                name: rest.to_string(),
            })
        }
        "list" => {
            if rest.is_empty() {
                Ok(ViewCommand::List)
            } else {
                Err("view list takes no arguments".into())
            }
        }
        "show" => {
            if rest.is_empty() {
                return Err("usage: view show <name>".into());
            }
            Ok(ViewCommand::Show {
                name: rest.to_string(),
            })
        }
        _ => Err(USAGE.into()),
    }
}

/// Parses one line into a command.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Command::Nothing);
    }
    let (head, rest) = match line.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (line, ""),
    };
    // `insert` and `update` share the `<rel> <c1> … <ck> <prob>` grammar.
    let parse_fact = |verb: &str| -> Result<(String, Vec<u64>, f64), String> {
        let mut parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() < 2 {
            return Err(format!("usage: {verb} <rel> <c1> … <ck> <prob>"));
        }
        let relation = parts.remove(0).to_string();
        let Some(prob_text) = parts.pop() else {
            return Err(format!("usage: {verb} <rel> <c1> … <ck> <prob>"));
        };
        let prob: f64 = prob_text
            .parse()
            .map_err(|_| "probability must be a number".to_string())?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("probability {prob} not in [0, 1]"));
        }
        let tuple = parts
            .iter()
            .map(|p| p.parse::<u64>().map_err(|_| format!("bad constant {p}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((relation, tuple, prob))
    };
    match head {
        "insert" => {
            let (relation, tuple, prob) = parse_fact("insert")?;
            Ok(Command::Insert {
                relation,
                tuple,
                prob,
            })
        }
        "update" => {
            let (relation, tuple, prob) = parse_fact("update")?;
            Ok(Command::Update {
                relation,
                tuple,
                prob,
            })
        }
        "view" => Ok(Command::View(parse_view_command(rest)?)),
        "domain" => {
            let consts = rest
                .split_whitespace()
                .map(|p| p.parse::<u64>().map_err(|_| format!("bad constant {p}")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Domain(consts))
        }
        "query" => {
            if rest.is_empty() {
                return Err("usage: query <sentence>".into());
            }
            Ok(Command::Query(rest.to_string()))
        }
        "answers" => {
            let (head_vars, cq) = rest
                .split_once(':')
                .ok_or_else(|| "usage: answers <v1,v2,…> : <cq>".to_string())?;
            let head = head_vars
                .split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect::<Vec<_>>();
            if head.is_empty() {
                return Err("answers needs at least one head variable".into());
            }
            if cq.trim().is_empty() {
                return Err("answers needs a query body after `:`".into());
            }
            Ok(Command::Answers {
                head,
                cq: cq.trim().to_string(),
            })
        }
        "classify" => {
            if rest.is_empty() {
                return Err("usage: classify <ucq>".into());
            }
            Ok(Command::Classify(rest.to_string()))
        }
        "open" => {
            let Some((lambda, query)) = rest.split_once(char::is_whitespace) else {
                // One token: a snapshot path (`open db.pdb`), unless it is
                // a bare number — then the user forgot the sentence.
                if rest.is_empty() || rest.parse::<f64>().is_ok() {
                    return Err(
                        "usage: open <lambda> <monotone sentence> | open <snapshot path>".into(),
                    );
                }
                return Ok(Command::Open(rest.to_string()));
            };
            let lambda: f64 = lambda
                .parse()
                .map_err(|_| "λ must be a number".to_string())?;
            if !(0.0..=1.0).contains(&lambda) {
                return Err(format!("λ = {lambda} not in [0, 1]"));
            }
            Ok(Command::OpenWorld {
                lambda,
                query: query.trim().to_string(),
            })
        }
        "show" => Ok(Command::Show),
        "stats" => Ok(Command::Stats),
        "metrics" => {
            if rest.is_empty() {
                Ok(Command::Metrics)
            } else {
                Err("metrics takes no arguments".into())
            }
        }
        "explain" => match rest.split_once(char::is_whitespace) {
            Some(("analyze", query)) if !query.trim().is_empty() => {
                Ok(Command::ExplainAnalyze(query.trim().to_string()))
            }
            _ => Err("usage: explain analyze <sentence>".into()),
        },
        "trace" => match rest {
            "last" => Ok(Command::TraceLast { json: false }),
            "last --json" => Ok(Command::TraceLast { json: true }),
            _ => Err("usage: trace last [--json]".into()),
        },
        "slowlog" => {
            if rest.is_empty() {
                Ok(Command::Slowlog)
            } else {
                Err("slowlog takes no arguments".into())
            }
        }
        "source" => {
            if rest.is_empty() {
                return Err("usage: source <file>".into());
            }
            Ok(Command::Source(rest.to_string()))
        }
        "save" => {
            if rest.is_empty() {
                return Err("usage: save <file>".into());
            }
            Ok(Command::Save(rest.to_string()))
        }
        "shutdown" => {
            if rest.is_empty() {
                Ok(Command::Shutdown)
            } else {
                Err("shutdown takes no arguments".into())
            }
        }
        "wal" => match rest.split_once(char::is_whitespace) {
            Some(("inspect", path)) if !path.trim().is_empty() => {
                Ok(Command::WalInspect(path.trim().to_string()))
            }
            _ => Err("usage: wal inspect <path>".into()),
        },
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(format!("unknown command {other:?}; try `help`")),
    }
}

/// The `help` text (shared by CLI and server).
pub const HELP: &str = "\
commands:
  insert <rel> <c1> … <ck> <p>   add a tuple with probability p
  update <rel> <c1> … <ck> <p>   change an existing tuple's probability
  domain <c1> … <ck>             extend the domain (matters for ∀)
  query <sentence>               Boolean query, e.g. exists x. R(x) & S(x,y)
  answers <v,…> : <cq>           non-Boolean CQ, e.g. answers x : R(x), S(x,y)
  classify <ucq>                 dichotomy classification
  open <λ> <sentence>            open-world interval for a monotone query
  view create <name> query <s>   materialize a Boolean query as a view
  view create <name> answers <v,…> : <cq>
                                 materialize one row per answer tuple
  view refresh [<name>]          rebuild stale views (all when no name)
  view drop <name>               unregister a view
  view list                      registered views and their status
  view show <name>               print a view's materialized rows
  show                           print the database
  stats                          engine + cache observability counters
  metrics                        Prometheus text exposition of all metrics
  explain analyze <sentence>     run a query and show its span tree
  trace last [--json]            last captured trace (text or Chrome JSON)
  slowlog                        queries slower than the slowlog threshold
  source <file>                  run commands from a file (CLI only)
  save <file>                    snapshot the database + views (CLI only)
  open <file>                    load a snapshot saved with `save` (CLI only)
  shutdown                       stop the server, flushing the log (server)
  wal inspect <path>             decode a write-ahead log file (CLI only)
  quit                           leave";

/// Canonicalizes query text for use in cache keys: trims and collapses every
/// whitespace run to a single space, so `query R(x)  &  S(x,y)` and
/// `query R(x) & S(x,y)` share a cache entry. Deliberately *not* a semantic
/// normal form — syntactically different spellings of the same query hash
/// apart, which costs a duplicate entry, never a wrong answer.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for token in text.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(token);
    }
    out
}

/// Renders a Boolean-query answer exactly as the CLI prints it.
pub fn format_answer(a: &Answer) -> String {
    let mut s = format!("p = {:.6}  (engine: {:?})", a.probability, a.method);
    if let Some((lo, hi)) = a.bounds {
        s.push_str(&format!("  bounds [{lo:.6}, {hi:.6}]"));
    }
    s.push('\n');
    s
}

/// Renders non-Boolean answer rows exactly as the CLI prints them.
pub fn format_answer_tuples(head: &[String], rows: &[AnswerTuple]) -> String {
    if rows.is_empty() {
        return "(no answers)\n".into();
    }
    let mut s = String::new();
    for a in rows {
        let binding: Vec<String> = head
            .iter()
            .zip(&a.values)
            .map(|(v, c)| format!("{v} = {c}"))
            .collect();
        s.push_str(&format!(
            "{}    p = {:.6}\n",
            binding.join(", "),
            a.probability
        ));
    }
    s
}

/// Renders a dichotomy verdict exactly as the CLI prints it.
pub fn format_complexity(c: Complexity) -> &'static str {
    match c {
        Complexity::PolynomialTime => "polynomial time",
        Complexity::SharpPHard => "#P-hard",
        Complexity::Unknown => "unknown (rules inconclusive)",
    }
}

/// Renders the error for an `update` of a non-existent tuple — shared so
/// the CLI and server cannot diverge.
pub fn format_update_missing(relation: &str, tuple: &[u64]) -> String {
    let consts: Vec<String> = tuple.iter().map(u64::to_string).collect();
    format!(
        "error: {relation}({}) is not a possible tuple; insert it first\n",
        consts.join(", ")
    )
}

/// Renders the `view create` acknowledgement.
pub fn format_view_created(view: &View) -> String {
    format!(
        "view {}: {} row(s) materialized ({})\n",
        view.name(),
        view.rows().len(),
        view.backend_summary()
    )
}

/// Renders one `view refresh` outcome line.
pub fn format_view_refreshed(name: &str, outcome: RefreshOutcome) -> String {
    let verdict = match outcome {
        RefreshOutcome::Fresh => "fresh",
        RefreshOutcome::Rebuilt => "rebuilt",
    };
    format!("view {name}: {verdict}\n")
}

/// Renders the `view list` payload (views in name order).
pub fn format_view_list<'a>(views: impl Iterator<Item = &'a View>) -> String {
    let mut s = String::new();
    for v in views {
        s.push_str(&format!(
            "{}  [{}] {}  rows={} backend={} status={}\n",
            v.name(),
            v.def().kind(),
            v.def().display(),
            v.rows().len(),
            v.backend_summary(),
            if v.is_stale() { "stale" } else { "fresh" },
        ));
    }
    if s.is_empty() {
        "(no views)\n".into()
    } else {
        s
    }
}

/// Renders the `view show` payload: the materialized rows, formatted
/// exactly like the equivalent `query` / `answers` output.
pub fn format_view_show(view: &View) -> String {
    let mut s = String::new();
    if view.is_stale() {
        s.push_str(&format!("(stale — run `view refresh {}`)\n", view.name()));
    }
    if let Some(answer) = view.boolean_answer() {
        s.push_str(&format_answer(&answer));
    } else if let Some((head, rows)) = view.answer_rows() {
        s.push_str(&format_answer_tuples(&head, &rows));
    }
    s
}

/// Renders an open-world interval exactly as the CLI prints it.
pub fn format_open(lower: &Answer, upper: &Answer) -> String {
    format!(
        "p ∈ [{:.6}, {:.6}]  (closed-world, λ-completion)\n",
        lower.probability, upper.probability
    )
}

/// Writes one framed response: the payload's lines (dot-stuffed: any line
/// beginning with `.` gets an extra leading `.`), then the `.` terminator.
pub fn write_framed(out: &mut impl Write, response: &str) -> std::io::Result<()> {
    for line in response.lines() {
        if line.starts_with('.') {
            out.write_all(b".")?;
        }
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.write_all(b".\n")?;
    out.flush()
}

/// Reads one framed response, un-stuffing dots. Returns `None` on EOF
/// before the terminator.
pub fn read_framed(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut response = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed == "." {
            return Ok(Some(response));
        }
        response.push_str(trimmed.strip_prefix('.').unwrap_or(trimmed));
        response.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inserts() {
        assert_eq!(
            parse_command("insert R 1 2 0.5").unwrap(),
            Command::Insert {
                relation: "R".into(),
                tuple: vec![1, 2],
                prob: 0.5
            }
        );
        assert!(parse_command("insert R").is_err());
        assert!(parse_command("insert R x 0.5").is_err());
        assert!(parse_command("insert R 1 1.5").is_err(), "p > 1 rejected");
        assert!(parse_command("insert R 1 -0.5").is_err(), "p < 0 rejected");
    }

    #[test]
    fn parses_queries_and_misc() {
        assert_eq!(
            parse_command("query exists x. R(x)").unwrap(),
            Command::Query("exists x. R(x)".into())
        );
        assert_eq!(
            parse_command("answers x, y : R(x), S(x,y)").unwrap(),
            Command::Answers {
                head: vec!["x".into(), "y".into()],
                cq: "R(x), S(x,y)".into()
            }
        );
        assert_eq!(
            parse_command("update R 1 2 0.75").unwrap(),
            Command::Update {
                relation: "R".into(),
                tuple: vec![1, 2],
                prob: 0.75
            }
        );
        assert_eq!(
            parse_command("view create v query exists x. R(x)").unwrap(),
            Command::View(ViewCommand::Create {
                name: "v".into(),
                query: ViewQueryText::Boolean("exists x. R(x)".into())
            })
        );
        assert_eq!(
            parse_command("view create v answers x, y : R(x), S(x,y)").unwrap(),
            Command::View(ViewCommand::Create {
                name: "v".into(),
                query: ViewQueryText::Answers {
                    head: vec!["x".into(), "y".into()],
                    cq: "R(x), S(x,y)".into()
                }
            })
        );
        assert_eq!(
            parse_command("view refresh").unwrap(),
            Command::View(ViewCommand::Refresh { name: None })
        );
        assert_eq!(
            parse_command("view refresh v").unwrap(),
            Command::View(ViewCommand::Refresh {
                name: Some("v".into())
            })
        );
        assert_eq!(
            parse_command("view drop v").unwrap(),
            Command::View(ViewCommand::Drop { name: "v".into() })
        );
        assert_eq!(
            parse_command("view list").unwrap(),
            Command::View(ViewCommand::List)
        );
        assert_eq!(
            parse_command("view show v").unwrap(),
            Command::View(ViewCommand::Show { name: "v".into() })
        );
        for bad in [
            "update R",
            "update R 1 2 nope",
            "update R 1 1.5",
            "view",
            "view create",
            "view create v",
            "view create v frobnicate R(x)",
            "view create v query",
            "view create v answers : R(x)",
            "view create v answers x :",
            "view drop",
            "view show",
            "view list extra",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should not parse");
        }
        assert_eq!(parse_command("  # comment").unwrap(), Command::Nothing);
        assert_eq!(parse_command("").unwrap(), Command::Nothing);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert!(parse_command("frobnicate").is_err());
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(parse_command("metrics").unwrap(), Command::Metrics);
        assert_eq!(
            parse_command("explain analyze exists x. R(x)").unwrap(),
            Command::ExplainAnalyze("exists x. R(x)".into())
        );
        assert_eq!(
            parse_command("trace last").unwrap(),
            Command::TraceLast { json: false }
        );
        assert_eq!(
            parse_command("trace last --json").unwrap(),
            Command::TraceLast { json: true }
        );
        assert_eq!(parse_command("slowlog").unwrap(), Command::Slowlog);
        for bad in [
            "metrics now",
            "explain",
            "explain analyze",
            "explain plan R(x)",
            "trace",
            "trace last --xml",
            "slowlog 5",
        ] {
            assert!(parse_command(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn open_disambiguates_snapshots_from_open_world() {
        // Two tokens: λ + sentence (the open-world query).
        assert_eq!(
            parse_command("open 0.2 exists x. R(x)").unwrap(),
            Command::OpenWorld {
                lambda: 0.2,
                query: "exists x. R(x)".into()
            }
        );
        // One non-numeric token: a snapshot path.
        assert_eq!(
            parse_command("open db.pdb").unwrap(),
            Command::Open("db.pdb".into())
        );
        // One numeric token: a forgotten sentence, not a path.
        assert!(parse_command("open 0.2").is_err());
        assert!(parse_command("open").is_err());
        // Shutdown and save parse strictly.
        assert_eq!(parse_command("shutdown").unwrap(), Command::Shutdown);
        assert!(parse_command("shutdown now").is_err());
        assert_eq!(
            parse_command("save out.pdb").unwrap(),
            Command::Save("out.pdb".into())
        );
        assert!(parse_command("save").is_err());
        // wal inspect needs both the subcommand and a path.
        assert_eq!(
            parse_command("wal inspect data/wal").unwrap(),
            Command::WalInspect("data/wal".into())
        );
        assert!(parse_command("wal").is_err());
        assert!(parse_command("wal inspect").is_err());
        assert!(parse_command("wal compact x").is_err());
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Every line here used to be accepted weirdly or is adversarial;
        // all must produce Err, never a panic or a bogus Ok.
        for line in [
            "insert",
            "insert R",
            "insert R 0.5", // missing constants is an insert of arity 0 — fine,
            // but a *lone* prob with no relation is not
            "insert R 1 2 huge", // non-numeric probability
            "insert R 1 2 2.5",  // out-of-range probability
            "domain x y",        // non-numeric constants
            "query",             // empty sentence
            "answers : R(x)",    // no head variables
            "answers x :",       // no body
            "answers x R(x)",    // missing colon
            "classify",          // empty UCQ
            "open 0.2",          // missing sentence
            "open nope R(x)",    // non-numeric λ
            "open 1.5 R(x)",     // λ out of range
            "source",            // missing path
            "∀x.R(x)",           // unknown command word
        ] {
            match parse_command(line) {
                Err(_) => {}
                Ok(Command::Insert {
                    relation,
                    tuple,
                    prob,
                }) if line == "insert R 0.5" => {
                    // `insert R 0.5` parses as arity-0 insert with p = 0.5 —
                    // accepted, matching the CLI's historical behavior.
                    assert_eq!((relation.as_str(), tuple.len(), prob), ("R", 0, 0.5));
                }
                Ok(cmd) => panic!("{line:?} unexpectedly parsed as {cmd:?}"),
            }
        }
    }

    #[test]
    fn parse_round_trips_on_canonical_forms() {
        // Rendering a parsed command back to its canonical line and
        // re-parsing is the identity.
        let render = |c: &Command| -> Option<String> {
            Some(match c {
                Command::Insert {
                    relation,
                    tuple,
                    prob,
                } => {
                    let consts: Vec<String> = tuple.iter().map(u64::to_string).collect();
                    if consts.is_empty() {
                        format!("insert {relation} {prob}")
                    } else {
                        format!("insert {relation} {} {prob}", consts.join(" "))
                    }
                }
                Command::Update {
                    relation,
                    tuple,
                    prob,
                } => {
                    let consts: Vec<String> = tuple.iter().map(u64::to_string).collect();
                    format!("update {relation} {} {prob}", consts.join(" "))
                }
                Command::View(v) => match v {
                    ViewCommand::Create {
                        name,
                        query: ViewQueryText::Boolean(q),
                    } => format!("view create {name} query {q}"),
                    ViewCommand::Create {
                        name,
                        query: ViewQueryText::Answers { head, cq },
                    } => format!("view create {name} answers {} : {cq}", head.join(", ")),
                    ViewCommand::Refresh { name: Some(n) } => format!("view refresh {n}"),
                    ViewCommand::Refresh { name: None } => "view refresh".into(),
                    ViewCommand::Drop { name } => format!("view drop {name}"),
                    ViewCommand::List => "view list".into(),
                    ViewCommand::Show { name } => format!("view show {name}"),
                },
                Command::Domain(cs) => format!(
                    "domain {}",
                    cs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
                ),
                Command::Query(q) => format!("query {q}"),
                Command::Answers { head, cq } => {
                    format!("answers {} : {cq}", head.join(", "))
                }
                Command::Classify(q) => format!("classify {q}"),
                Command::OpenWorld { lambda, query } => format!("open {lambda} {query}"),
                Command::Show => "show".into(),
                Command::Stats => "stats".into(),
                Command::Metrics => "metrics".into(),
                Command::ExplainAnalyze(q) => format!("explain analyze {q}"),
                Command::TraceLast { json: false } => "trace last".into(),
                Command::TraceLast { json: true } => "trace last --json".into(),
                Command::Slowlog => "slowlog".into(),
                Command::Source(p) => format!("source {p}"),
                Command::Save(p) => format!("save {p}"),
                Command::Open(p) => format!("open {p}"),
                Command::Shutdown => "shutdown".into(),
                Command::WalInspect(p) => format!("wal inspect {p}"),
                Command::Help => "help".into(),
                Command::Quit => "quit".into(),
                Command::Nothing => return None,
            })
        };
        let cases = [
            Command::Insert {
                relation: "R".into(),
                tuple: vec![1, 2],
                prob: 0.25,
            },
            Command::Update {
                relation: "R".into(),
                tuple: vec![1, 2],
                prob: 0.75,
            },
            Command::View(ViewCommand::Create {
                name: "v".into(),
                query: ViewQueryText::Boolean("exists x. R(x)".into()),
            }),
            Command::View(ViewCommand::Create {
                name: "w".into(),
                query: ViewQueryText::Answers {
                    head: vec!["x".into(), "y".into()],
                    cq: "R(x), S(x,y)".into(),
                },
            }),
            Command::View(ViewCommand::Refresh {
                name: Some("v".into()),
            }),
            Command::View(ViewCommand::Refresh { name: None }),
            Command::View(ViewCommand::Drop { name: "v".into() }),
            Command::View(ViewCommand::List),
            Command::View(ViewCommand::Show { name: "v".into() }),
            Command::Domain(vec![0, 1, 2]),
            Command::WalInspect("data/wal".into()),
            Command::Query("exists x. R(x) & S(x,y)".into()),
            Command::Answers {
                head: vec!["x".into(), "y".into()],
                cq: "R(x), S(x,y)".into(),
            },
            Command::Classify("R(x), S(x,y), T(y)".into()),
            Command::OpenWorld {
                lambda: 0.2,
                query: "exists x. R(x)".into(),
            },
            Command::Show,
            Command::Stats,
            Command::Metrics,
            Command::ExplainAnalyze("exists x. R(x) & S(x,y)".into()),
            Command::TraceLast { json: false },
            Command::TraceLast { json: true },
            Command::Slowlog,
            Command::Source("script.pdb".into()),
            Command::Save("state.pdb".into()),
            Command::Open("state.pdb".into()),
            Command::Shutdown,
            Command::Help,
            Command::Quit,
        ];
        for cmd in cases {
            let line = render(&cmd).unwrap();
            assert_eq!(parse_command(&line).unwrap(), cmd, "via {line:?}");
        }
    }

    #[test]
    fn normalization_collapses_whitespace_only() {
        assert_eq!(
            normalize_query("  exists x.   R(x)  &\tS(x,y) "),
            "exists x. R(x) & S(x,y)"
        );
        assert_eq!(normalize_query("R(x)"), "R(x)");
        assert_ne!(normalize_query("R(x)"), normalize_query("R( x)"));
    }

    #[test]
    fn framing_round_trips_including_dot_lines() {
        let payloads = [
            "p = 0.400000  (engine: Lifted)\n",
            "",
            "multi\nline\n",
            ".\nliteral dot line\n..\n",
        ];
        for p in payloads {
            let mut wire = Vec::new();
            write_framed(&mut wire, p).unwrap();
            let mut reader = std::io::BufReader::new(&wire[..]);
            let got = read_framed(&mut reader).unwrap().expect("terminator");
            // Round trip is exact up to a trailing newline on non-empty
            // payloads (framing is line-based).
            let want = if p.is_empty() || p.ends_with('\n') {
                p.to_string()
            } else {
                format!("{p}\n")
            };
            assert_eq!(got, want, "payload {p:?}");
        }
    }

    #[test]
    fn read_framed_reports_eof() {
        let mut reader = std::io::BufReader::new(&b"partial response\n"[..]);
        assert!(read_framed(&mut reader).unwrap().is_none());
    }
}
