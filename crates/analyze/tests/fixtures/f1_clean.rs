//! Known-clean fixture for F1: the same accumulation, but over a
//! `BTreeMap` — iteration order is the key order, independent of any hash
//! seed, so the operand order of the FP sum is deterministic.

use std::collections::BTreeMap;

pub fn total(probs: &BTreeMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, p) in probs.iter() {
        accumulate(&mut acc, *p);
    }
    acc
}

fn accumulate(acc: &mut f64, p: f64) {
    *acc += p;
}
