//! Known-clean fixture for A1: the hot root (`eval`) only amortizes into a
//! caller-owned buffer (`.push` is deliberately not an allocation shape),
//! and the fn that *does* allocate is setup code unreachable from any root.

pub fn eval(xs: &[f64], out: &mut Vec<f64>) {
    for &x in xs {
        out.push(x * 0.5);
    }
}

pub fn build_table(n: usize) -> Vec<f64> {
    let mut table = Vec::with_capacity(n);
    for i in 0..n {
        table.push(i as f64);
    }
    table
}
