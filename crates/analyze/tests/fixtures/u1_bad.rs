//! U1 fixture: unsafe without a SAFETY audit comment.

pub fn first_byte(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

pub unsafe fn transmute_u32(x: [u8; 4]) -> u32 {
    u32::from_ne_bytes(x)
}
