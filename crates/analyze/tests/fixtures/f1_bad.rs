//! Known-bad fixture for F1: a hash-ordered loop calls a helper that
//! accumulates into an `f64`. FP addition does not commute with rounding,
//! so the sum depends on the hash seed.

use std::collections::HashMap;

pub fn total(probs: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, p) in probs.iter() {
        accumulate(&mut acc, *p);
    }
    acc
}

fn accumulate(acc: &mut f64, p: f64) {
    *acc += p;
}
