//! D1 fixture (clean): ordered containers for order-sensitive sinks; hash
//! containers only where iteration order cannot surface.
use std::collections::{BTreeMap, HashMap, HashSet};

pub fn total_probability(weights: &BTreeMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    for (_tuple, w) in weights.iter() {
        total += w;
    }
    total
}

pub fn lookup(index: &HashMap<u64, f64>, key: u64) -> f64 {
    // Point lookups are order-free: a HashMap is fine when nothing walks it.
    index.get(&key).copied().unwrap_or(0.0)
}

pub fn cardinality(members: &HashSet<String>) -> usize {
    // Integer accumulation over hash order is commutative — no FP rounding,
    // no rendered order.
    let mut n = 0usize;
    for _m in members {
        n += 1;
    }
    n
}
