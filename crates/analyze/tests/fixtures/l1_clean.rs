//! L1 fixture (clean): a single global acquisition order (alpha before
//! beta), and guards dropped before blocking calls.
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn swap(&self) {
        let mut a = self.alpha.lock().unwrap();
        let mut b = self.beta.lock().unwrap();
        std::mem::swap(&mut *a, &mut *b);
    }

    pub fn notify(&self, tx: &Sender<u32>) {
        let a = self.alpha.lock().unwrap();
        let value = *a;
        drop(a);
        let _ = tx.send(value);
    }
}
