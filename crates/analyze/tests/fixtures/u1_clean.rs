//! U1 fixture (clean): every unsafe site states its discharged obligation.

pub fn first_byte(bytes: &[u8]) -> Option<u8> {
    if bytes.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees `as_ptr()` points at
    // least one initialized byte, and the read does not outlive `bytes`.
    Some(unsafe { *bytes.as_ptr() })
}

/// Reinterprets four native-endian bytes as a `u32`.
///
/// # Safety
///
/// The caller must ensure the bytes came from a `u32` with the same
/// endianness (this is a fixture; the obligation is illustrative).
pub unsafe fn transmute_u32(x: [u8; 4]) -> u32 {
    u32::from_ne_bytes(x)
}
