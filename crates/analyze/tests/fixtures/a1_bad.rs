//! Known-bad fixture for A1: a hot root (`eval`) reaches a helper that
//! allocates on every call. The allocation is one hop away from the root,
//! so the finding must carry an interprocedural trace.

pub fn eval(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += widen(x);
    }
    acc
}

fn widen(x: f64) -> f64 {
    let lanes = vec![x; 4];
    let mut total = 0.0;
    for l in &lanes {
        total += *l;
    }
    total
}
