//! Suppression fixture: a real violation waived in place, with the
//! mandatory reason.

pub fn startup_config(raw: &str) -> u64 {
    // pdb-lint: allow(P1, reason = "runs once at boot before any connection is accepted; a bad config should abort loudly")
    raw.parse().unwrap()
}
