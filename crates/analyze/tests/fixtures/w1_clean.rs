//! Known-clean fixture for W1: the same mutation, but a `log_mutation`
//! call sits between the mutation and the reply, so the ack implies the
//! WAL record exists.

pub struct Db {
    rows: Vec<(u32, f64)>,
}

impl Db {
    pub fn update_prob(&mut self, id: u32, p: f64) {
        for row in self.rows.iter_mut() {
            if row.0 == id {
                row.1 = p;
            }
        }
    }
}

pub fn handle_command(db: &mut Db, wal: &mut Vec<u32>, id: u32, p: f64) -> &'static str {
    db.update_prob(id, p);
    log_mutation(wal, id);
    "ok"
}

fn log_mutation(wal: &mut Vec<u32>, id: u32) {
    wal.push(id);
}
