//! Known-bad fixture for W1: the protocol handler mutates served state
//! (`db.update_prob`) and replies without a WAL append in between — an
//! acked mutation that missed the WAL is lost on crash.

pub struct Db {
    rows: Vec<(u32, f64)>,
}

impl Db {
    pub fn update_prob(&mut self, id: u32, p: f64) {
        for row in self.rows.iter_mut() {
            if row.0 == id {
                row.1 = p;
            }
        }
    }
}

pub fn handle_command(db: &mut Db, id: u32, p: f64) -> &'static str {
    db.update_prob(id, p);
    "ok"
}
