//! Known-bad fixture for B1: the worker entry point (`worker_loop`)
//! reaches a helper that parks on a mutex. The block is one hop away, so
//! the finding must carry an interprocedural trace.

use std::sync::Mutex;

pub fn worker_loop(counter: &Mutex<u64>, rounds: u32) {
    for _ in 0..rounds {
        bump(counter);
    }
}

fn bump(counter: &Mutex<u64>) {
    let mut guard = counter.lock().unwrap();
    *guard += 1;
}
