//! D1 fixture: hash-ordered iteration feeding FP accumulation and output.
use std::collections::{HashMap, HashSet};

pub fn total_probability(weights: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0f64;
    for (_tuple, w) in weights.iter() {
        total += w;
    }
    total
}

pub fn render_members(members: &HashSet<String>) -> String {
    let mut out = String::new();
    for m in members {
        out.push_str(&format!("{m}\n"));
    }
    out
}
