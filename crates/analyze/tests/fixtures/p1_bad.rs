//! P1 fixture: panics reachable from request-handling code.

pub fn parse_request(parts: &[&str]) -> (String, u64) {
    let name = parts[0].to_string();
    let id: u64 = parts[1].parse().unwrap();
    if id == 0 {
        panic!("id must be positive");
    }
    (name, id)
}

pub fn pick(options: &[String], hint: Option<usize>) -> String {
    let i = hint.expect("caller always passes a hint");
    options[i].clone()
}
