//! P1 fixture (clean): the same surface, degrading instead of panicking.

pub fn parse_request(parts: &[&str]) -> Result<(String, u64), String> {
    let (name, id_text) = match parts {
        [name, id] => (name, id),
        _ => return Err("usage: <name> <id>".into()),
    };
    let id: u64 = id_text
        .parse()
        .map_err(|_| "id must be a number".to_string())?;
    if id == 0 {
        return Err("id must be positive".into());
    }
    Ok((name.to_string(), id))
}

pub fn pick(options: &[String], hint: Option<usize>) -> Option<String> {
    options.get(hint?).cloned()
}
