//! Known-clean fixture for B1: the worker entry point stays compute-only;
//! the fn that does block is unreachable from any worker root.

use std::sync::Mutex;

pub fn worker_loop(xs: &mut [u64], rounds: u32) {
    for _ in 0..rounds {
        for x in xs.iter_mut() {
            *x = bump(*x);
        }
    }
}

fn bump(x: u64) -> u64 {
    x.wrapping_add(1)
}

pub fn checkpoint(counter: &Mutex<u64>) -> u64 {
    let guard = counter.lock().unwrap();
    *guard
}
