//! L1 fixture: opposite acquisition orders (deadlock cycle), a re-entrant
//! acquisition, and a guard held across a channel send.
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn alpha_then_beta(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn beta_then_alpha(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }

    pub fn reentrant(&self) -> u32 {
        let first = self.alpha.lock().unwrap();
        let second = self.alpha.lock().unwrap();
        *first + *second
    }

    pub fn notify_locked(&self, tx: &Sender<u32>) {
        let a = self.alpha.lock().unwrap();
        let _ = tx.send(*a);
    }
}
