//! Integration tests of the call-graph resolver across multiple files:
//! free functions imported across crates, methods resolved through typed
//! receivers, deliberate ambiguity, and the aggregate resolution rate.

use pdb_analyze::graph::{self, CallGraph, Resolution};
use pdb_analyze::model::SourceFile;

fn build(files: &[(&str, &str)]) -> CallGraph {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    graph::build(&parsed)
}

fn resolution_of<'g>(g: &'g CallGraph, name: &str) -> &'g Resolution {
    &g.sites
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no call site named `{name}`"))
        .resolution
}

#[test]
fn free_fn_resolves_across_crates_through_use() {
    let g = build(&[
        (
            "crates/wmc/src/lib.rs",
            "pub fn solve_exact(n: u32) -> u32 { n }\n",
        ),
        (
            "crates/server/src/lib.rs",
            "use pdb_wmc::solve_exact;\n\
             pub fn answer(n: u32) -> u32 { solve_exact(n) }\n",
        ),
    ]);
    match resolution_of(&g, "solve_exact") {
        Resolution::Workspace(id) => {
            assert_eq!(g.symbols.fns[*id].name, "solve_exact");
        }
        other => panic!("expected Workspace, got {other:?}"),
    }
}

#[test]
fn method_resolves_through_typed_receiver_across_files() {
    let g = build(&[
        (
            "crates/views/src/manager.rs",
            "pub struct ViewManager;\n\
             impl ViewManager { pub fn refresh_all(&mut self) {} }\n",
        ),
        (
            "crates/server/src/lib.rs",
            "use pdb_views::ViewManager;\n\
             pub fn tick(mgr: &mut ViewManager) { mgr.refresh_all(); }\n",
        ),
    ]);
    match resolution_of(&g, "refresh_all") {
        Resolution::Workspace(id) => {
            let f = &g.symbols.fns[*id];
            assert_eq!(f.self_type.as_deref(), Some("ViewManager"));
        }
        other => panic!("expected Workspace, got {other:?}"),
    }
}

#[test]
fn same_name_two_self_types_without_type_evidence_is_ambiguous() {
    // The receiver's type is not inferable (`acquire` is opaque), and two
    // workspace impls define `replay` — neither may be claimed.
    let g = build(&[(
        "crates/a/src/lib.rs",
        "pub struct Wal;\nimpl Wal { pub fn replay(&self) {} }\n\
             pub struct Log;\nimpl Log { pub fn replay(&self) {} }\n\
             pub fn go() { let x = acquire(); x.replay(); }\n",
    )]);
    assert_eq!(resolution_of(&g, "replay"), &Resolution::Ambiguous);
}

#[test]
fn common_std_method_names_stay_external() {
    // `lock`, `unwrap`, `send` exist in the workspace too, but without
    // receiver-type evidence the resolver must not claim std calls.
    let g = build(&[
        (
            "crates/a/src/lib.rs",
            "pub struct Pool;\nimpl Pool { pub fn send(&self) {} }\n",
        ),
        (
            "crates/b/src/lib.rs",
            "pub fn go(tx: &Sender<u32>) { tx.send(1).unwrap(); }\n",
        ),
    ]);
    assert_eq!(resolution_of(&g, "send"), &Resolution::External);
    assert_eq!(resolution_of(&g, "unwrap"), &Resolution::External);
}

#[test]
fn guard_receiver_peels_to_protected_type() {
    // A `Mutex<ViewManager>` field: calling through the locked guard must
    // resolve the method on the protected type, not stop at `Mutex`.
    let g = build(&[
        (
            "crates/views/src/lib.rs",
            "pub struct ViewManager;\n\
             impl ViewManager { pub fn create_view(&mut self) {} }\n",
        ),
        (
            "crates/server/src/lib.rs",
            "use std::sync::Mutex;\nuse pdb_views::ViewManager;\n\
             pub struct Svc { views: Mutex<ViewManager> }\n\
             impl Svc {\n\
                 pub fn run(&self) {\n\
                     let mut views = self.views.lock().unwrap();\n\
                     views.create_view();\n\
                 }\n\
             }\n",
        ),
    ]);
    match resolution_of(&g, "create_view") {
        Resolution::Workspace(id) => {
            let f = &g.symbols.fns[*id];
            assert_eq!(f.self_type.as_deref(), Some("ViewManager"));
        }
        other => panic!("expected Workspace, got {other:?}"),
    }
}

#[test]
fn caller_and_callee_edges_are_symmetric() {
    let g = build(&[(
        "crates/a/src/lib.rs",
        "pub fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
    )]);
    let id_of = |name: &str| {
        g.symbols
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}`"))
    };
    let (top, mid, leaf) = (id_of("top"), id_of("mid"), id_of("leaf"));
    assert!(g.callees[top].iter().any(|&(callee, _)| callee == mid));
    assert!(g.callees[mid].iter().any(|&(callee, _)| callee == leaf));
    assert!(g.callers[mid].iter().any(|&(caller, _)| caller == top));
    assert!(g.callers[leaf].iter().any(|&(caller, _)| caller == mid));
    assert_eq!(g.stats.edges, 2);
}

#[test]
fn resolution_rate_counts_only_ambiguous_as_unresolved() {
    let g = build(&[(
        "crates/a/src/lib.rs",
        "pub struct X;\nimpl X { pub fn hit(&self) {} }\n\
         pub struct Y;\nimpl Y { pub fn hit(&self) {} }\n\
         pub fn go() { let u = acquire(); known(); u.hit(); }\n\
         pub fn known() {}\n",
    )]);
    // `acquire` -> External, `known` -> Workspace (both count as
    // resolved); `hit` -> Ambiguous (two candidates, untyped receiver).
    assert_eq!(g.stats.call_sites, 3);
    assert_eq!(g.stats.resolved, 2);
    assert!((g.stats.resolution_rate() - 2.0 / 3.0).abs() < 1e-9);
}
