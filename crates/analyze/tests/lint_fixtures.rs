//! End-to-end tests of the `probdb-lint` binary over known-bad and
//! known-clean fixtures, asserted through the `--json` output, plus the
//! self-test: the workspace's own sources must be lint-clean.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_probdb-lint"))
        .args(args)
        .output()
        .expect("run probdb-lint")
}

/// Runs the linter on one fixture with `--json` and returns (stdout, exit
/// status). `extra` precedes the path (e.g. `--p1-everywhere`).
fn lint_fixture(name: &str, extra: &[&str]) -> (String, i32) {
    let path = fixture(name);
    let mut args: Vec<&str> = vec!["--json", "--deny-all"];
    args.extend_from_slice(extra);
    let path_s = path.to_string_lossy().into_owned();
    args.push(&path_s);
    let out = run_lint(&args);
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn d1_bad_flags_both_sinks() {
    let (json, code) = lint_fixture("d1_bad.rs", &[]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"D1\""), "{json}");
    assert!(json.contains("floating-point accumulation"), "{json}");
    assert!(json.contains("formatted output"), "{json}");
    assert!(json.contains("\"failed\":true"), "{json}");
}

#[test]
fn d1_clean_passes() {
    let (json, code) = lint_fixture("d1_clean.rs", &[]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn u1_bad_flags_block_and_fn() {
    let (json, code) = lint_fixture("u1_bad.rs", &[]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"U1\""), "{json}");
    assert!(json.contains("`unsafe block`"), "{json}");
    assert!(json.contains("`unsafe fn`"), "{json}");
}

#[test]
fn u1_clean_accepts_safety_comment_and_doc_section() {
    let (json, code) = lint_fixture("u1_clean.rs", &[]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn l1_bad_flags_cycle_reentry_and_guard_across_send() {
    let (json, code) = lint_fixture("l1_bad.rs", &[]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("lock-order cycle"), "{json}");
    assert!(json.contains("alpha"), "{json}");
    assert!(json.contains("beta"), "{json}");
    assert!(
        json.contains("while a guard on it is already held"),
        "{json}"
    );
    assert!(json.contains("held across `send`"), "{json}");
}

#[test]
fn l1_clean_passes() {
    let (json, code) = lint_fixture("l1_clean.rs", &[]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn p1_bad_flags_every_panic_shape() {
    let (json, code) = lint_fixture("p1_bad.rs", &["--p1-everywhere"]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("`.unwrap()`"), "{json}");
    assert!(json.contains("`.expect()`"), "{json}");
    assert!(json.contains("`panic!`"), "{json}");
    assert!(json.contains("indexing `parts[…]`"), "{json}");
    assert!(json.contains("indexing `options[…]`"), "{json}");
}

#[test]
fn p1_clean_passes() {
    let (json, code) = lint_fixture("p1_clean.rs", &["--p1-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn suppression_with_reason_waives_the_finding() {
    let (json, code) = lint_fixture("suppressed_clean.rs", &["--p1-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
    assert!(json.contains("\"suppressed\":1"), "{json}");
}

#[test]
fn a1_bad_traces_allocation_to_hot_root() {
    let (json, code) = lint_fixture("a1_bad.rs", &["--hot-everywhere"]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"A1\""), "{json}");
    assert!(
        json.contains("`vec!` allocates inside `fn widen`"),
        "{json}"
    );
    // The allocation is one hop from the root: the trace must show the hop.
    assert!(json.contains("::eval] -> "), "{json}");
    assert!(json.contains("::widen ("), "{json}");
}

#[test]
fn a1_clean_amortized_push_and_cold_setup_pass() {
    let (json, code) = lint_fixture("a1_clean.rs", &["--hot-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn b1_bad_traces_block_to_worker_root() {
    let (json, code) = lint_fixture("b1_bad.rs", &["--hot-everywhere"]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"B1\""), "{json}");
    assert!(
        json.contains("`counter.lock()` blocks inside `fn bump`"),
        "{json}"
    );
    assert!(json.contains("::worker_loop] -> "), "{json}");
    assert!(json.contains("::bump ("), "{json}");
}

#[test]
fn b1_clean_compute_only_worker_passes() {
    let (json, code) = lint_fixture("b1_clean.rs", &["--hot-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn f1_bad_flags_hash_loop_reaching_float_accumulator() {
    let (json, code) = lint_fixture("f1_bad.rs", &["--hot-everywhere"]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"F1\""), "{json}");
    assert!(
        json.contains("hash-ordered iteration over `probs`"),
        "{json}"
    );
    assert!(
        json.contains("reaches floating-point accumulation"),
        "{json}"
    );
}

#[test]
fn f1_clean_sorted_iteration_passes() {
    let (json, code) = lint_fixture("f1_clean.rs", &["--hot-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn w1_bad_flags_unlogged_mutation_before_ack() {
    let (json, code) = lint_fixture("w1_bad.rs", &["--hot-everywhere"]);
    assert_eq!(code, 1, "{json}");
    assert!(json.contains("\"lint\":\"W1\""), "{json}");
    assert!(
        json.contains("mutation `update_prob` in `fn handle_command`"),
        "{json}"
    );
    assert!(json.contains("no WAL append"), "{json}");
}

#[test]
fn w1_clean_logged_mutation_passes() {
    let (json, code) = lint_fixture("w1_clean.rs", &["--hot-everywhere"]);
    assert_eq!(code, 0, "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
}

#[test]
fn interproc_fixtures_resolve_every_call_site() {
    // The fixtures exercise free-fn, method, and cross-fn resolution; all
    // of their call sites must resolve (the workspace floor is 80%).
    for name in [
        "a1_bad.rs",
        "b1_bad.rs",
        "f1_bad.rs",
        "w1_bad.rs",
        "w1_clean.rs",
    ] {
        let (json, _) = lint_fixture(name, &["--hot-everywhere"]);
        assert!(
            json.contains("\"resolution_rate\":1.0000"),
            "{name}: {json}"
        );
    }
}

#[test]
fn workspace_is_lint_clean() {
    // The self-test: every invariant the linter encodes holds on the
    // workspace's own sources, with warnings promoted to errors — the same
    // gate CI runs.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(env!("CARGO_BIN_EXE_probdb-lint"))
        .args(["--workspace", "--deny-all", "--json"])
        .current_dir(&root)
        .output()
        .expect("run probdb-lint");
    let json = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{json}");
    assert!(json.contains("\"findings\":[]"), "{json}");
    assert!(json.contains("\"failed\":false"), "{json}");
}
