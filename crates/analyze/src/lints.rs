//! The four invariant lints.
//!
//! - **D1 nondeterminism** — iteration over `HashMap`/`HashSet` whose
//!   results feed floating-point accumulation or user-visible output. Hash
//!   iteration order varies between runs (and between `RandomState` seeds),
//!   so both sinks break the engine's bit-identity guarantee.
//! - **U1 unsafe-audit** — every `unsafe` block/impl/fn must carry an
//!   immediately preceding `// SAFETY:` comment (or, for `unsafe fn`, a
//!   `# Safety` doc section) stating the obligation discharged.
//! - **L1 lock-order** — builds a lock-acquisition graph (guard creation
//!   sites per function, one call-depth of propagation) and reports cycles,
//!   re-entrant acquisitions, and guards held across pool calls or channel
//!   operations.
//! - **P1 panic-surface** — no `unwrap`/`expect`/panicking macro/slice
//!   indexing on the server request path: the server degrades, never dies.
//!
//! All lints skip `#[cfg(test)]` / `#[test]` regions: the invariants
//! protect production behaviour, and test code panics by design.

use crate::lexer::TokKind;
use crate::model::{receiver_chain, SourceFile, NON_INDEX_KEYWORDS};
use std::collections::{BTreeMap, BTreeSet};

/// A lint's identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Nondeterministic hash iteration feeding FP accumulation or output.
    D1,
    /// `unsafe` without a `// SAFETY:` audit comment.
    U1,
    /// Lock-order cycle / guard held across a blocking boundary.
    L1,
    /// Panic reachable from the server request path.
    P1,
    /// Malformed suppression comment (missing or empty reason).
    S0,
    /// Allocation reachable from an evaluation hot root (interprocedural).
    A1,
    /// Blocking call reachable from a pool worker (interprocedural).
    B1,
    /// Float accumulation fed by hash/parallel order (interprocedural).
    F1,
    /// Mutation acked without passing the WAL (interprocedural).
    W1,
    /// Stale or malformed baseline entry.
    B0,
}

impl Lint {
    /// The lint's code as printed in reports and used in suppressions.
    pub fn code(self) -> &'static str {
        match self {
            Lint::D1 => "D1",
            Lint::U1 => "U1",
            Lint::L1 => "L1",
            Lint::P1 => "P1",
            Lint::S0 => "S0",
            Lint::A1 => "A1",
            Lint::B1 => "B1",
            Lint::F1 => "F1",
            Lint::W1 => "W1",
            Lint::B0 => "B0",
        }
    }

    /// Whether a finding of this lint fails the build by default. The
    /// heuristic lints (D1, L1, A1, B1, F1) warn by default and are
    /// promoted by `--deny-all`; the contract lints (U1, P1, S0, W1) and
    /// baseline hygiene (B0) always deny.
    pub fn denies_by_default(self) -> bool {
        matches!(self, Lint::U1 | Lint::P1 | Lint::S0 | Lint::W1 | Lint::B0)
    }
}

/// One raw finding (suppression is applied by the driver).
#[derive(Clone, Debug)]
pub struct RawFinding {
    /// Which lint fired.
    pub lint: Lint,
    /// Index of the file in the analyzed set.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// Baseline key (`fn site`), for findings the ratchet may grandfather.
    pub key: Option<String>,
}

fn finding(lint: Lint, file: usize, sf: &SourceFile, tok: usize, message: String) -> RawFinding {
    let t = &sf.tokens()[tok];
    RawFinding {
        lint,
        file,
        line: t.line,
        col: t.col,
        message,
        key: None,
    }
}

/// The innermost function whose body contains token `i`.
fn enclosing_fn<'a>(sf: &'a SourceFile, i: usize) -> Option<&'a crate::model::Func> {
    sf.functions
        .iter()
        .filter(|f| matches!(f.body, Some((a, b)) if i > a && i < b))
        .max_by_key(|f| f.body.map(|(a, _)| a))
}

// ---------------------------------------------------------------------------
// D1 — nondeterministic hash iteration
// ---------------------------------------------------------------------------

const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

const OUTPUT_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Identifiers declared with a `HashMap`/`HashSet` type or initializer in
/// this file (fields, lets, params). A file-local, name-based
/// approximation: good enough because the workspace's own style keeps hash
/// collections short-lived and locally named.
pub(crate) fn hash_typed_names(sf: &SourceFile) -> BTreeSet<String> {
    let toks = sf.tokens();
    let mut names = BTreeSet::new();
    for (h, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a path prefix (`std::collections::`) and any
        // `&`/`mut`/lifetime decoration.
        let mut j = h as isize - 1;
        while j >= 1
            && toks[j as usize].is_punct("::")
            && toks[(j - 1) as usize].kind == TokKind::Ident
        {
            j -= 2;
        }
        while j >= 0
            && (toks[j as usize].is_punct("&")
                || toks[j as usize].is_ident("mut")
                || toks[j as usize].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j < 1 {
            continue;
        }
        let (sep, name) = (&toks[j as usize], &toks[(j - 1) as usize]);
        if sep.is_punct(":") && name.kind == TokKind::Ident {
            names.insert(name.text.clone());
        } else if sep.is_punct("=") {
            // `x = HashMap::new()` — find the binding ident before `=`.
            if name.kind == TokKind::Ident {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

fn lint_d1(sf: &SourceFile, file: usize, out: &mut Vec<RawFinding>) {
    let toks = sf.tokens();
    let hash_names = hash_typed_names(sf);
    if hash_names.is_empty() {
        return;
    }

    // Iteration sites: `<hash>.<iter-method>(` and `for … in <hash> {`.
    let mut sites: Vec<(usize, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) {
            continue;
        }
        if t.kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let chain = receiver_chain(&sf.lexed, i as isize - 2);
            if let Some(name) = chain.last() {
                if hash_names.contains(name) {
                    sites.push((i, name.clone()));
                }
            }
        }
        if t.is_ident("for") {
            // Find `in`, then inspect the iterated expression up to `{`.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() && !(depth == 0 && toks[j].is_ident("in")) {
                match toks[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_ident("in") {
                continue;
            }
            // Bare `&map` / `&mut map` / `map` iterated directly.
            let mut k = j + 1;
            while k < toks.len() && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
                k += 1;
            }
            if k < toks.len()
                && toks[k].kind == TokKind::Ident
                && hash_names.contains(&toks[k].text)
                && toks.get(k + 1).is_some_and(|n| n.is_punct("{"))
            {
                sites.push((k, toks[k].text.clone()));
            }
        }
    }
    if sites.is_empty() {
        return;
    }

    for (site, name) in sites {
        let Some(f) = enclosing_fn(sf, site) else {
            continue;
        };
        let (a, b) = f.body.unwrap_or((site, site));
        let body = &toks[a..=b.min(toks.len() - 1)];
        let float_evidence = body.iter().any(|t| {
            t.is_ident("f64")
                || t.is_ident("f32")
                || (t.kind == TokKind::Lit
                    && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")))
        });
        let accumulates = body.iter().enumerate().any(|(i, t)| {
            matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/=") && t.kind == TokKind::Punct
                || (t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "sum" | "product" | "fold")
                    && i > 0
                    && body[i - 1].is_punct("."))
        });
        let outputs = body.iter().enumerate().any(|(i, t)| {
            (t.kind == TokKind::Ident
                && OUTPUT_MACROS.contains(&t.text.as_str())
                && body.get(i + 1).is_some_and(|n| n.is_punct("!")))
                || t.is_ident("push_str")
        });
        if accumulates && float_evidence {
            out.push(finding(
                Lint::D1,
                file,
                sf,
                site,
                format!(
                    "hash-ordered iteration over `{name}` feeds floating-point accumulation in \
                     `fn {}` — iteration order is nondeterministic, so FP rounding differs \
                     between runs; iterate a BTreeMap/BTreeSet or sort before accumulating",
                    f.name
                ),
            ));
        } else if outputs {
            out.push(finding(
                Lint::D1,
                file,
                sf,
                site,
                format!(
                    "hash-ordered iteration over `{name}` feeds formatted output in `fn {}` — \
                     rendered order is nondeterministic; iterate a BTreeMap/BTreeSet or sort \
                     before rendering",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// U1 — unsafe audit
// ---------------------------------------------------------------------------

fn lint_u1(sf: &SourceFile, file: usize, out: &mut Vec<RawFinding>) {
    let toks = sf.tokens();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") || sf.in_test(i) {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("trait") => "trait",
            Some(n) if n.is_punct("{") => "block",
            // `unsafe` deep in a signature (`unsafe extern "C" fn` types…):
            // still audit it.
            _ => "item",
        };
        let line = t.line;
        // Accept a `SAFETY:` comment ending on this line (trailing) or in
        // the contiguous block of comment lines directly above — SAFETY
        // justifications routinely wrap over several `//` lines and the
        // marker sits on the first of them.
        let mut annotated = sf
            .lexed
            .comment_ending_on(line)
            .is_some_and(|c| c.text.contains("SAFETY:"));
        let mut l = line;
        while !annotated && l > 1 {
            match sf.lexed.comment_ending_on(l - 1) {
                Some(c) => {
                    annotated = c.text.contains("SAFETY:");
                    l = c.line;
                }
                None => break,
            }
        }
        // For `unsafe fn` items, a rustdoc `# Safety` section above the
        // signature (the std convention) also counts; allow the doc block
        // to sit a few lines up, above attributes.
        let doc_safety = kind == "fn"
            && sf
                .lexed
                .comments_ending_in(line.saturating_sub(20), line.saturating_sub(1))
                .any(|c| {
                    (c.text.starts_with("///") || c.text.starts_with("/**"))
                        && c.text.contains("# Safety")
                });
        if !annotated && !doc_safety {
            out.push(finding(
                Lint::U1,
                file,
                sf,
                i,
                format!(
                    "`unsafe {kind}` without an immediately preceding `// SAFETY:` comment — \
                     every unsafe site must state the obligation it discharges"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L1 — lock order
// ---------------------------------------------------------------------------

/// Calls that block (or hand work to other threads) and therefore must not
/// happen while a lock guard is live.
const BLOCKING_CALLS: &[&str] = &[
    "parallel_map",
    "map_indices",
    "spawn",
    "scope",
    "send",
    "recv",
    "recv_timeout",
];

/// One lock acquisition with its guard's live region.
pub(crate) struct Acq {
    /// Crate-qualified lock name (`server::db`).
    pub(crate) lock: String,
    /// Token index of the acquiring method/helper call.
    pub(crate) site: usize,
    /// Token index where the guard is last live (inclusive).
    pub(crate) end: usize,
    /// Enclosing function name.
    pub(crate) func: String,
    /// File index in the analyzed set.
    pub(crate) file: usize,
}

/// Finds lock acquisitions in one file: `recv.lock()` / `.read()` /
/// `.write()` with empty argument lists, plus the poison-recovering helper
/// form `lock(&recv)` / `read(&recv)` / `write(&recv)`.
pub(crate) fn find_acquisitions(sf: &SourceFile, file: usize) -> Vec<Acq> {
    let toks = sf.tokens();
    // Enclosing `{` for each token, for statement/block extent queries.
    let mut enclosing = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        enclosing[i] = stack.last().copied().unwrap_or(usize::MAX);
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            stack.pop();
            enclosing[i] = stack.last().copied().unwrap_or(usize::MAX);
        }
    }

    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) || t.kind != TokKind::Ident {
            continue;
        }
        let is_lock_name = matches!(t.text.as_str(), "lock" | "read" | "write");
        if !is_lock_name {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|n| n.is_punct("(")) else {
            continue;
        };
        let _ = open;
        let close = match sf.lexed.match_of(i + 1) {
            Some(c) => c,
            None => continue,
        };
        let method_form = i >= 1 && toks[i - 1].is_punct(".");
        let lock_field = if method_form {
            // `.lock()` / `.read()` / `.write()` — only the no-argument
            // form is a guard creation (`io::Read::read(&mut buf)` etc.
            // take arguments).
            if close != i + 2 {
                continue;
            }
            let chain = receiver_chain(&sf.lexed, i as isize - 2);
            match chain.last() {
                Some(name) => name.clone(),
                None => continue,
            }
        } else {
            // Helper form `lock(&x)` — one argument, which names the lock.
            if close == i + 2 {
                continue; // zero-arg free fn is not a helper call
            }
            let arg_idents: Vec<&str> = toks[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text != "self" && t.text != "mut")
                .map(|t| t.text.as_str())
                .collect();
            match arg_idents.last() {
                Some(name) => (*name).to_string(),
                None => continue,
            }
        };
        // Statement start: scan back to the nearest `;`, `{` or `}`.
        let mut s = i;
        while s > 0 && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
            s -= 1;
        }
        let is_let = toks.get(s).is_some_and(|t| t.is_ident("let"));
        let binding = if is_let {
            let mut b = s + 1;
            while toks.get(b).is_some_and(|t| t.is_ident("mut")) {
                b += 1;
            }
            toks.get(b)
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
        } else {
            None
        };
        let end = match binding.as_deref() {
            Some("_") | None => {
                // Temporary guard: lives to the end of the statement —
                // the next `;` at the same nesting depth, or the close of
                // the enclosing block for a tail expression.
                let depth_home = enclosing[i];
                let limit = if depth_home == usize::MAX {
                    toks.len() - 1
                } else {
                    sf.lexed.match_of(depth_home).unwrap_or(toks.len() - 1)
                };
                let mut e = close;
                while e < limit {
                    e += 1;
                    if toks[e].is_punct(";") && enclosing[e] == depth_home {
                        break;
                    }
                }
                e.min(limit)
            }
            Some(name) => {
                // Named guard: lives to the end of the enclosing block,
                // unless explicitly `drop(name)`d earlier.
                let block_open = enclosing[s];
                let block_end = if block_open == usize::MAX {
                    toks.len() - 1
                } else {
                    sf.lexed.match_of(block_open).unwrap_or(toks.len() - 1)
                };
                let mut e = block_end;
                let mut j = close;
                while j + 3 <= block_end {
                    j += 1;
                    if toks[j].is_ident("drop")
                        && toks[j + 1].is_punct("(")
                        && toks[j + 2].is_ident(name)
                    {
                        e = j;
                        break;
                    }
                }
                e
            }
        };
        let func = enclosing_fn(sf, i).map_or_else(String::new, |f| f.name.clone());
        out.push(Acq {
            lock: format!("{}::{}", sf.crate_name, lock_field),
            site: i,
            end,
            func,
            file,
        });
    }
    out
}

fn lint_l1(files: &[SourceFile], out: &mut Vec<RawFinding>) {
    // Group files by crate so call-depth propagation and lock identity stay
    // crate-local.
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, sf) in files.iter().enumerate() {
        by_crate.entry(&sf.crate_name).or_default().push(i);
    }

    for (_krate, file_idxs) in by_crate {
        let mut acqs: Vec<Acq> = Vec::new();
        for &fi in &file_idxs {
            acqs.extend(find_acquisitions(&files[fi], fi));
        }
        if acqs.is_empty() {
            continue;
        }
        // Direct locks per function, for one call-depth of propagation.
        let mut fn_locks: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for a in &acqs {
            if !a.func.is_empty() {
                fn_locks.entry(&a.func).or_default().insert(&a.lock);
            }
        }

        // Edges lock → lock with one example site each.
        let mut edges: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
        for a in &acqs {
            let sf = &files[a.file];
            let toks = sf.tokens();
            // Nested direct acquisitions within the guard's region.
            for b in &acqs {
                if b.file == a.file && b.site > a.site && b.site <= a.end {
                    if b.lock == a.lock {
                        out.push(finding(
                            Lint::L1,
                            a.file,
                            sf,
                            b.site,
                            format!(
                                "lock `{}` acquired in `fn {}` while a guard on it is already \
                                 held (acquired at line {}) — self-deadlock unless the \
                                 receivers are provably disjoint",
                                a.lock, a.func, toks[a.site].line
                            ),
                        ));
                    } else {
                        edges
                            .entry((a.lock.clone(), b.lock.clone()))
                            .or_insert_with(|| {
                                (a.file, toks[b.site].line, format!("fn {}", b.func))
                            });
                    }
                }
            }
            // Scan the region for blocking calls and callee expansion.
            let hi = a.end.min(toks.len() - 1);
            for j in a.site + 1..=hi {
                let t = &toks[j];
                if t.kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|n| n.is_punct("(")) {
                    continue;
                }
                if BLOCKING_CALLS.contains(&t.text.as_str()) {
                    out.push(finding(
                        Lint::L1,
                        a.file,
                        sf,
                        j,
                        format!(
                            "guard on `{}` (line {}) is held across `{}` in `fn {}` — a \
                             blocking or work-distributing call under a lock can deadlock \
                             the pool or serialize it",
                            a.lock, toks[a.site].line, t.text, a.func
                        ),
                    ));
                }
                // Callee expansion: one call-depth, and only for calls we
                // can plausibly resolve crate-locally — free calls and
                // `self.` methods. A `.wait(` on some other receiver is a
                // different function (e.g. Condvar::wait) even if this
                // crate defines a `wait`; and free `drop(x)` is
                // `std::mem::drop`, not a crate fn named `drop`.
                let prev_dot = toks[j - 1].is_punct(".");
                let self_call = prev_dot && j >= 2 && toks[j - 2].is_ident("self");
                if (!prev_dot || self_call) && t.text != "drop" && t.text != a.func {
                    if let Some(callee_locks) = fn_locks.get(t.text.as_str()) {
                        for l in callee_locks {
                            if **l != *a.lock {
                                edges
                                    .entry((a.lock.clone(), (*l).to_string()))
                                    .or_insert_with(|| {
                                        (a.file, toks[j].line, format!("via call to `{}`", t.text))
                                    });
                            }
                        }
                    }
                }
            }
        }

        // Cycle detection over the edge set (DFS, deterministic order).
        let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            graph.entry(from).or_default().insert(to);
        }
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for start in graph.keys().copied().collect::<Vec<_>>() {
            let mut path: Vec<&str> = vec![start];
            find_cycles(start, &graph, &mut path, &mut reported, &edges, files, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn find_cycles<'a>(
    node: &str,
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    path: &mut Vec<&'a str>,
    reported: &mut BTreeSet<String>,
    edges: &BTreeMap<(String, String), (usize, u32, String)>,
    files: &[SourceFile],
    out: &mut Vec<RawFinding>,
) {
    if path.len() > 16 {
        return; // bounded: lock graphs here are tiny
    }
    let Some(nexts) = graph.get(node) else {
        return;
    };
    for next in nexts {
        if let Some(pos) = path.iter().position(|n| n == next) {
            // Canonicalize the cycle so each is reported once.
            let cycle: Vec<&str> = path[pos..].to_vec();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map_or(0, |(i, _)| i);
            let canon: Vec<&str> = cycle[min..]
                .iter()
                .chain(cycle[..min].iter())
                .copied()
                .collect();
            let key = canon.join(" -> ");
            if reported.insert(key.clone()) {
                let locs: Vec<String> = canon
                    .iter()
                    .zip(canon.iter().cycle().skip(1))
                    .filter_map(|(a, b)| {
                        edges
                            .get(&((*a).to_string(), (*b).to_string()))
                            .map(|(f, line, how)| {
                                format!("{a} -> {b} at {}:{line} ({how})", files[*f].path)
                            })
                    })
                    .collect();
                let (f, line, _) = edges
                    .get(&(canon[0].to_string(), canon[1 % canon.len()].to_string()))
                    .expect("cycle edge exists");
                out.push(RawFinding {
                    lint: Lint::L1,
                    file: *f,
                    line: *line,
                    col: 1,
                    message: format!(
                        "lock-order cycle: {key} -> {} [{}]",
                        canon[0],
                        locs.join("; ")
                    ),
                    key: None,
                });
            }
            continue;
        }
        path.push(next);
        find_cycles(next, graph, path, reported, edges, files, out);
        path.pop();
    }
}

// ---------------------------------------------------------------------------
// P1 — panic surface
// ---------------------------------------------------------------------------

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

fn lint_p1(sf: &SourceFile, file: usize, out: &mut Vec<RawFinding>) {
    let toks = sf.tokens();
    for (i, t) in toks.iter().enumerate() {
        if sf.in_test(i) {
            continue;
        }
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i >= 1
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let f = enclosing_fn(sf, i).map_or("?", |f| f.name.as_str());
            out.push(finding(
                Lint::P1,
                file,
                sf,
                i,
                format!(
                    "`.{}()` on the server request path (`fn {f}`) — a panic here kills the \
                     worker; degrade with an error reply instead",
                    t.text
                ),
            ));
            continue;
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            let f = enclosing_fn(sf, i).map_or("?", |f| f.name.as_str());
            out.push(finding(
                Lint::P1,
                file,
                sf,
                i,
                format!(
                    "`{}!` on the server request path (`fn {f}`) — the request path must \
                     degrade, not die",
                    t.text
                ),
            ));
            continue;
        }
        // Slice/collection indexing: `expr[...]` panics on out-of-bounds or
        // missing keys.
        if t.is_punct("[") && i >= 1 {
            let p = &toks[i - 1];
            let indexes = match p.kind {
                TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            };
            // Not an attribute (`#[…]`) and not a generic argument list.
            if indexes {
                let f = enclosing_fn(sf, i).map_or("?", |f| f.name.as_str());
                out.push(finding(
                    Lint::P1,
                    file,
                    sf,
                    i,
                    format!(
                        "indexing `{}[…]` on the server request path (`fn {f}`) — use `.get()` \
                         and degrade on miss instead of risking an out-of-bounds panic",
                        p.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Which lints run on which files.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Treat every file as request-path code for P1 (used by fixture
    /// tests; the CLI scopes P1 to `crates/server/src`,
    /// `crates/store/src`, `crates/replica/src`, `crates/kernel/src`,
    /// `crates/views/src`, and `crates/obs/src`).
    pub p1_everywhere: bool,
}

/// True when P1 applies to `path` under the default scoping: the serving
/// layer (a panic kills a pooled worker), the durability layer (a panic
/// between apply and log leaves memory ahead of the WAL), the replication
/// layer (a panic in the client thread silently stops a replica
/// converging; one in the hub kills the publishing mutation), the
/// evaluation kernel (flat programs run inside server workers and view
/// refreshes; a malformed program must degrade to NaN, not panic), and the
/// view layer (view compilation and refresh run inside server mutations
/// and pool jobs; a panic there poisons the service locks), and the
/// observability layer (spans and metric ticks run inline on every hot
/// path above; a panic while recording would take the query down with
/// it).
pub fn p1_applies(path: &str) -> bool {
    path.contains("crates/server/src")
        || path.contains("crates/store/src")
        || path.contains("crates/replica/src")
        || path.contains("crates/kernel/src")
        || path.contains("crates/views/src")
        || path.contains("crates/obs/src")
}

/// Runs all four lints over the analyzed set.
pub fn run_lints(files: &[SourceFile], opts: &LintOptions) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, sf) in files.iter().enumerate() {
        lint_d1(sf, i, &mut out);
        lint_u1(sf, i, &mut out);
        if opts.p1_everywhere || p1_applies(&sf.path) {
            lint_p1(sf, i, &mut out);
        }
    }
    lint_l1(files, &mut out);
    out
}
