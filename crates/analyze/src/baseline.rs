//! The committed-baseline ratchet for heuristic findings.
//!
//! `crates/analyze/baseline.txt` holds grandfathered findings, one per
//! line:
//!
//! ```text
//! A1 crates/wmc/src/dpll.rs solve cond.clone() -- forked branch needs its own assignment; bounded by decision depth
//! ```
//!
//! The format is `LINT path key -- reason`. The key is the finding's
//! `fn site` pair (line-number independent, so refactors that move code
//! without changing its shape do not churn the file). A baselined finding
//! is reported in the `baselined` section instead of `findings`, so CI
//! stays green on grandfathered debt while **new** findings deny.
//!
//! The ratchet's teeth: a baseline entry that matches nothing (the finding
//! was fixed — remove the line) or cannot be parsed (no ` -- `, empty
//! reason, unknown lint) is itself a deny-level finding, `B0`. The file can
//! only shrink truthfully. Only heuristic lints may be baselined; the
//! contract lints (`W1`, `U1`, `P1`, `S0`) cannot be grandfathered.

/// Lints that may carry baseline entries.
pub const BASELINABLE: &[&str] = &["A1", "B1", "F1", "D1", "L1"];

/// One parsed baseline line.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Lint code (`A1`, …).
    pub lint: String,
    /// Repo-relative path the finding lives in.
    pub path: String,
    /// The finding key: `fn site`.
    pub key: String,
    /// Why this finding is accepted (mandatory).
    pub reason: String,
    /// 1-based line in the baseline file.
    pub line_no: u32,
}

/// A parsed baseline file.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    /// Well-formed entries.
    pub entries: Vec<Entry>,
    /// Malformed lines as `(line number, problem)` — each becomes a `B0`.
    pub problems: Vec<(u32, String)>,
}

/// Parses baseline text. Blank lines and `#` comments are skipped.
pub fn parse(text: &str) -> Baseline {
    let mut out = Baseline::default();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((head, reason)) = trimmed.split_once(" -- ") else {
            out.problems.push((
                line_no,
                "missing ` -- reason` separator — every baselined finding needs a written reason"
                    .to_string(),
            ));
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            out.problems
                .push((line_no, "empty reason after ` -- `".to_string()));
            continue;
        }
        let mut fields = head.split_whitespace();
        let (Some(lint), Some(path)) = (fields.next(), fields.next()) else {
            out.problems
                .push((line_no, "expected `LINT path key -- reason`".to_string()));
            continue;
        };
        let key = fields.collect::<Vec<&str>>().join(" ");
        if key.is_empty() {
            out.problems
                .push((line_no, "missing finding key (`fn site`)".to_string()));
            continue;
        }
        if !BASELINABLE.contains(&lint) {
            out.problems.push((
                line_no,
                format!(
                    "lint `{lint}` cannot be baselined — only heuristic lints \
                     ({}) may be grandfathered",
                    BASELINABLE.join(", ")
                ),
            ));
            continue;
        }
        out.entries.push(Entry {
            lint: lint.to_string(),
            path: path.to_string(),
            key,
            reason: reason.to_string(),
            line_no,
        });
    }
    out
}

impl Baseline {
    /// The entry covering a finding, if any.
    pub fn matching(&self, lint: &str, path: &str, key: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.lint == lint && e.path == path && e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let b = parse(
            "# grandfathered findings\n\
             \n\
             A1 crates/wmc/src/dpll.rs solve cond.clone() -- forked branch needs its own assignment\n\
             B1 crates/par/src/lib.rs worker_loop wake.wait() -- idle parking is the design\n",
        );
        assert_eq!(b.entries.len(), 2);
        assert!(b.problems.is_empty());
        assert_eq!(b.entries[0].key, "solve cond.clone()");
        assert_eq!(b.entries[0].line_no, 3);
        assert!(b
            .matching("A1", "crates/wmc/src/dpll.rs", "solve cond.clone()")
            .is_some());
        assert!(b
            .matching("A1", "crates/wmc/src/dpll.rs", "other key")
            .is_none());
    }

    #[test]
    fn missing_reason_is_a_problem() {
        let b = parse("A1 crates/a/src/lib.rs f v.clone()\nA1 crates/a/src/lib.rs f x -- \n");
        assert!(b.entries.is_empty());
        assert_eq!(b.problems.len(), 2, "{:?}", b.problems);
    }

    #[test]
    fn contract_lints_cannot_be_baselined() {
        let b = parse("W1 crates/server/src/service.rs handle insert -- busy week\n");
        assert!(b.entries.is_empty());
        assert_eq!(b.problems.len(), 1);
        assert!(b.problems[0].1.contains("cannot be baselined"));
    }

    #[test]
    fn truncated_lines_are_problems() {
        let b = parse("A1 -- reason\nA1 crates/a/src/lib.rs -- reason\n");
        assert_eq!(b.problems.len(), 2, "{:?}", b.problems);
    }
}
