//! `probdb-lint` — run the in-tree invariant lints over the workspace.
//!
//! ```text
//! probdb-lint --workspace [--json] [--deny-all] [--stats]
//! probdb-lint [--json] [--deny-all] [--baseline <file>] <file.rs|dir>...
//! ```
//!
//! Under `--workspace`, the committed baseline at
//! `crates/analyze/baseline.txt` is applied automatically when it exists;
//! `--baseline <file>` selects one explicitly. `--stats` prints the
//! call-graph summary line (files, functions, call sites, edges,
//! resolution rate).
//!
//! Exit status: 0 when no denying finding survives suppression, 1 when one
//! does, 2 on usage or I/O errors.

use pdb_analyze::{analyze_sources, render_human, render_json, render_stats, Options};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: probdb-lint [--workspace] [--json] [--deny-all] [--stats] \
         [--baseline <file>] [--p1-everywhere] [--hot-everywhere] [paths...]"
    );
    std::process::exit(2);
}

/// Walks up from the current directory to the workspace root (the nearest
/// ancestor whose Cargo.toml contains `[workspace]`).
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects `.rs` files under `dir`, skipping `target/` and hidden dirs.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for path in children {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures/` holds the linter's own intentionally-bad test
            // inputs — linting them from a directory walk would fail every
            // workspace run by design. Explicit file arguments still reach
            // them.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn main() {
    let mut opts = Options::default();
    let mut json = false;
    let mut stats = false;
    let mut workspace = false;
    let mut baseline_arg: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--stats" => stats = true,
            "--deny-all" => opts.deny_all = true,
            "--p1-everywhere" => opts.p1_everywhere = true,
            "--hot-everywhere" => opts.hot_everywhere = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("probdb-lint: --baseline needs a file argument");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            a if a.starts_with('-') => {
                eprintln!("probdb-lint: unknown flag {a}");
                usage();
            }
            a => paths.push(PathBuf::from(a)),
        }
    }
    if !workspace && paths.is_empty() {
        usage();
    }

    let root = if workspace {
        match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("probdb-lint: no workspace Cargo.toml found above the current directory");
                std::process::exit(2);
            }
        }
    } else {
        std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
    };

    let mut files: Vec<PathBuf> = Vec::new();
    if workspace {
        collect_rs(&root.join("src"), &mut files);
        collect_rs(&root.join("crates"), &mut files);
        collect_rs(&root.join("tests"), &mut files);
        collect_rs(&root.join("benches"), &mut files);
    }
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, &mut files);
        } else {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();

    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(text) => {
                let rel = f
                    .strip_prefix(&root)
                    .unwrap_or(f)
                    .to_string_lossy()
                    .replace('\\', "/");
                sources.push((rel, text));
            }
            Err(e) => {
                eprintln!("probdb-lint: cannot read {}: {e}", f.display());
                std::process::exit(2);
            }
        }
    }

    // Baseline: explicit flag wins; a workspace run picks up the committed
    // file automatically when present.
    let baseline_path = baseline_arg.or_else(|| {
        if workspace {
            let p = root.join("crates/analyze/baseline.txt");
            p.is_file().then_some(p)
        } else {
            None
        }
    });
    if let Some(bp) = baseline_path {
        match std::fs::read_to_string(&bp) {
            Ok(text) => {
                let label = bp
                    .strip_prefix(&root)
                    .unwrap_or(&bp)
                    .to_string_lossy()
                    .replace('\\', "/");
                opts.baseline = Some((label, text));
            }
            Err(e) => {
                eprintln!("probdb-lint: cannot read baseline {}: {e}", bp.display());
                std::process::exit(2);
            }
        }
    }

    let report = analyze_sources(&sources, &opts);
    if stats {
        println!("{}", render_stats(&report.stats));
    }
    if json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    std::process::exit(i32::from(report.failed()));
}
