//! Workspace-wide symbol table: every `fn` item with its impl-block type
//! association and `self` parameter, per-file `use` import maps, and the
//! crate/module namespace the call-graph resolver (`graph`) matches
//! qualified paths against.
//!
//! The table is built from the token stream alone (no AST): `impl` headers
//! are parsed by tracking angle-bracket depth, `use` trees by a small
//! recursive-descent walk. Crate names are normalized between their two
//! spellings — the directory name (`wmc`) and the lib name (`pdb_wmc`) —
//! so `pdb_wmc::solve` resolves into `crates/wmc/`.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One `fn` item, workspace-wide.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Index of the file in the analyzed set.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The `impl` block's type, for associated functions and methods.
    pub self_type: Option<String>,
    /// True when the first parameter is (a borrow of) `self`.
    pub has_self: bool,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range `(open, close)` of the body braces, when present.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function lives inside a test region.
    pub in_test: bool,
}

impl FnInfo {
    /// `crate::Type::name` / `crate::name`, for traces and reports.
    pub fn qual(&self, files: &[SourceFile]) -> String {
        let krate = &files[self.file].crate_name;
        match &self.self_type {
            Some(t) => format!("{krate}::{t}::{}", self.name),
            None => format!("{krate}::{}", self.name),
        }
    }
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function item, in (file, token) order.
    pub fns: Vec<FnInfo>,
    /// Function name → ids, for candidate lookup.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Types that have at least one `impl` block in the workspace.
    pub impl_types: BTreeSet<String>,
    /// Normalized crate directory names (`wmc`, `par`, `probdb`, …).
    pub crates: BTreeSet<String>,
    /// Module names: file stems of the analyzed set.
    pub modules: BTreeSet<String>,
    /// Per-file import map: local name → full path segments.
    pub imports: Vec<BTreeMap<String, Vec<String>>>,
}

/// Strips the repo's lib-name prefix so `pdb_wmc` and `wmc` compare equal.
pub fn norm_crate(seg: &str) -> &str {
    seg.strip_prefix("pdb_").unwrap_or(seg)
}

/// `impl` blocks in one file: `(type name, body open, body close)`.
///
/// The type is the last angle-depth-0 identifier before the body brace
/// (after `for`, when present), which handles `impl Foo`, `impl<T> Foo<T>`,
/// `impl Trait for Foo`, and `impl std::fmt::Debug for Foo`; a `where`
/// clause ends the scan so its bound names are not mistaken for the type.
fn impl_blocks(sf: &SourceFile) -> Vec<(String, usize, usize)> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut angle = 0i32;
        let mut last_type: Option<String> = None;
        let mut in_where = false;
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            let t = &toks[j];
            if angle == 0 && t.is_punct("{") {
                open = Some(j);
                break;
            }
            if angle == 0 && t.is_punct(";") {
                break;
            }
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                _ => {}
            }
            if angle == 0 && t.kind == TokKind::Ident && !in_where {
                match t.text.as_str() {
                    // Bound names in a `where` clause are not the type; keep
                    // scanning for the body brace without recording them.
                    "where" => in_where = true,
                    "for" => last_type = None,
                    "dyn" | "mut" | "const" | "unsafe" | "as" => {}
                    _ => last_type = Some(t.text.clone()),
                }
            }
            j += 1;
        }
        if let (Some(ty), Some(open)) = (last_type, open) {
            if let Some(close) = sf.lexed.match_of(open) {
                out.push((ty, open, close));
            }
        }
        i = j.max(i) + 1;
    }
    out
}

/// Whether the parameter list opening at `open` starts with (a borrow of)
/// `self`.
fn params_take_self(sf: &SourceFile, open: usize) -> bool {
    let toks = sf.tokens();
    let mut k = open + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == TokKind::Lifetime)
    {
        k += 1;
    }
    toks.get(k).is_some_and(|t| t.is_ident("self"))
}

/// Finds every `fn` item with its token position, body, and `self` flag.
fn scan_fns(sf: &SourceFile, file: usize, out: &mut Vec<FnInfo>) {
    let toks = sf.tokens();
    let lexed = &sf.lexed;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Walk the signature: the first `(` is the parameter list (generic
        // params sit inside `<…>`, which the angle counter skips), the
        // first depth-0 `{` is the body, a depth-0 `;` ends a bodyless
        // declaration.
        let mut body = None;
        let mut has_self = false;
        let mut seen_params = false;
        let mut angle = 0i32;
        let mut k = i + 2;
        while k < toks.len() {
            let t = &toks[k];
            match t.text.as_str() {
                "<" if t.kind == TokKind::Punct => angle += 1,
                "<<" => angle += 2,
                ">" => angle = (angle - 1).max(0),
                ">>" => angle = (angle - 2).max(0),
                _ => {}
            }
            if t.is_punct("(") || t.is_punct("[") {
                if !seen_params && t.is_punct("(") && angle == 0 {
                    seen_params = true;
                    has_self = params_take_self(sf, k);
                }
                if let Some(c) = lexed.match_of(k) {
                    k = c;
                }
            } else if t.is_punct("{") && angle == 0 {
                body = lexed.match_of(k).map(|c| (k, c));
                break;
            } else if t.is_punct(";") && angle == 0 {
                break;
            }
            k += 1;
        }
        out.push(FnInfo {
            file,
            name: name_tok.text.clone(),
            self_type: None, // filled by the impl pass below
            has_self,
            fn_tok: i,
            body,
            line: toks[i].line,
            in_test: sf.in_test(i),
        });
        i += 2;
    }
}

/// Parses one file's `use` declarations into `local name → path segments`.
/// Grouped trees (`use a::{b, c::d}`) and `as` renames are handled; glob
/// imports are skipped (nothing to name).
fn parse_imports(sf: &SourceFile) -> BTreeMap<String, Vec<String>> {
    let toks = sf.tokens();
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let mut j = i + 1;
            parse_use_tree(sf, &mut j, &mut Vec::new(), &mut out, 0);
            i = j;
        }
        i += 1;
    }
    out
}

fn parse_use_tree(
    sf: &SourceFile,
    j: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut BTreeMap<String, Vec<String>>,
    depth: usize,
) {
    if depth > 8 {
        return;
    }
    let toks = sf.tokens();
    let base_len = prefix.len();
    while *j < toks.len() {
        let t = &toks[*j];
        if t.kind == TokKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
            *j += 1;
            if toks.get(*j).is_some_and(|t| t.is_punct("::")) {
                *j += 1;
                continue;
            }
        } else if t.is_punct("{") {
            let close = sf.lexed.match_of(*j).unwrap_or(toks.len() - 1);
            *j += 1;
            while *j < close {
                parse_use_tree(sf, j, prefix, out, depth + 1);
                if toks.get(*j).is_some_and(|t| t.is_punct(",")) {
                    *j += 1;
                }
            }
            *j = close + 1;
            prefix.truncate(base_len);
            return;
        } else if t.is_punct("*") {
            *j += 1; // glob: nothing to record
            prefix.truncate(base_len);
            return;
        }
        // End of one leaf: optional `as` rename, then record it.
        let mut local = prefix.last().cloned();
        if toks.get(*j).is_some_and(|t| t.is_ident("as")) {
            if let Some(name) = toks.get(*j + 1).filter(|t| t.kind == TokKind::Ident) {
                local = Some(name.text.clone());
                *j += 2;
            }
        }
        if let Some(name) = local {
            if prefix.len() > 1 || depth > 0 {
                out.insert(name, prefix.clone());
            }
        }
        prefix.truncate(base_len);
        return;
    }
}

/// Builds the symbol table for the analyzed set.
pub fn build_symbols(files: &[SourceFile]) -> SymbolTable {
    let mut table = SymbolTable::default();
    for (fi, sf) in files.iter().enumerate() {
        table.crates.insert(norm_crate(&sf.crate_name).to_string());
        if let Some(stem) = sf
            .path
            .rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".rs"))
        {
            table.modules.insert(stem.to_string());
        }
        let first = table.fns.len();
        scan_fns(sf, fi, &mut table.fns);
        // Impl association: a fn belongs to the innermost impl body that
        // contains its `fn` keyword — unless another fn's body does too
        // (a nested helper fn inside a method is free, not associated).
        let impls = impl_blocks(sf);
        let spans: Vec<(usize, usize)> = table.fns[first..].iter().filter_map(|f| f.body).collect();
        for f in &mut table.fns[first..] {
            let nested = spans
                .iter()
                .any(|&(a, b)| a < f.fn_tok && f.fn_tok < b && f.body != Some((a, b)));
            if nested {
                continue;
            }
            f.self_type = impls
                .iter()
                .filter(|&&(_, open, close)| open < f.fn_tok && f.fn_tok < close)
                .max_by_key(|&&(_, open, _)| open)
                .map(|(ty, _, _)| ty.clone());
        }
        for (ty, _, _) in &impls {
            table.impl_types.insert(ty.clone());
        }
        table.imports.push(parse_imports(sf));
    }
    for (id, f) in table.fns.iter().enumerate() {
        table.by_name.entry(f.name.clone()).or_default().push(id);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> (Vec<SourceFile>, SymbolTable) {
        let files = vec![SourceFile::parse("crates/demo/src/lib.rs", src)];
        let t = build_symbols(&files);
        (files, t)
    }

    #[test]
    fn impl_association_and_self_detection() {
        let src = "pub struct Pool;\nimpl Pool {\n  pub fn new(n: usize) -> Pool { Pool }\n  fn wait(&self) {}\n}\nimpl std::fmt::Debug for Pool { fn fmt(&self, f: &mut F) -> R { ok() }\n}\nfn free(x: u32) {}\n";
        let (_files, t) = table(src);
        let get = |n: &str| {
            let id = t.by_name[n][0];
            &t.fns[id]
        };
        assert_eq!(get("new").self_type.as_deref(), Some("Pool"));
        assert!(!get("new").has_self);
        assert_eq!(get("wait").self_type.as_deref(), Some("Pool"));
        assert!(get("wait").has_self);
        assert_eq!(get("fmt").self_type.as_deref(), Some("Pool"));
        assert_eq!(get("free").self_type, None);
        assert!(t.impl_types.contains("Pool"));
    }

    #[test]
    fn generic_impl_headers_and_where_clauses() {
        let src =
            "impl<T: Send> Holder<T> where T: Clone {\n  fn get(&self) -> &T { &self.0 }\n}\n";
        let (_files, t) = table(src);
        let id = t.by_name["get"][0];
        assert_eq!(t.fns[id].self_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn nested_fns_are_free() {
        let src = "impl W {\n  fn outer(&self) { fn inner(x: u32) -> u32 { x } inner(1); }\n}\n";
        let (_files, t) = table(src);
        let outer = &t.fns[t.by_name["outer"][0]];
        let inner = &t.fns[t.by_name["inner"][0]];
        assert_eq!(outer.self_type.as_deref(), Some("W"));
        assert_eq!(inner.self_type, None);
    }

    #[test]
    fn use_trees_record_renames_and_groups() {
        let src = "use std::collections::{HashMap, BTreeMap as Tree};\nuse pdb_wmc::solve;\nuse crate::util::*;\n";
        let (_files, t) = table(src);
        let imp = &t.imports[0];
        assert_eq!(
            imp.get("HashMap"),
            Some(&vec![
                "std".to_string(),
                "collections".to_string(),
                "HashMap".to_string()
            ])
        );
        assert_eq!(
            imp.get("Tree"),
            Some(&vec![
                "std".to_string(),
                "collections".to_string(),
                "BTreeMap".to_string()
            ])
        );
        assert_eq!(
            imp.get("solve"),
            Some(&vec!["pdb_wmc".to_string(), "solve".to_string()])
        );
        assert!(!imp.contains_key("*"));
    }

    #[test]
    fn crate_name_normalization() {
        assert_eq!(norm_crate("pdb_wmc"), "wmc");
        assert_eq!(norm_crate("wmc"), "wmc");
        assert_eq!(norm_crate("probdb"), "probdb");
    }
}
