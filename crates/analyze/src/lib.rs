//! # pdb-analyze — in-tree invariant linter for the probdb workspace
//!
//! A dependency-free static-analysis pass over the workspace's own Rust
//! sources. It ships its own small lexer (`lexer`), a token-shape structural
//! model (`model`), and four lints (`lints`):
//!
//! | code | default | invariant |
//! |------|---------|-----------|
//! | `D1` | warn    | no hash-ordered iteration feeding FP accumulation or output |
//! | `U1` | deny    | every `unsafe` carries a `// SAFETY:` audit comment |
//! | `L1` | warn    | lock acquisition graph is acyclic; no guard held across blocking calls |
//! | `P1` | deny    | no panic (unwrap/expect/macros/indexing) on the server request path |
//! | `S0` | deny    | suppression comments carry a non-empty reason |
//!
//! Findings can be waived in place with
//! `// pdb-lint: allow(<lint>, reason = "…")` on the offending line or the
//! line above. The reason is mandatory — an unexplained waiver is itself a
//! finding (`S0`).
//!
//! The `probdb-lint` binary runs the pass over explicit paths or the whole
//! workspace (`--workspace`), prints human or `--json` reports, and exits
//! nonzero when any denying finding survives suppression.

pub mod lexer;
pub mod lints;
pub mod model;
pub mod suppress;

pub use lints::{Lint, LintOptions};

use model::SourceFile;

/// One reported problem, after suppression filtering.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The lint that fired.
    pub lint: Lint,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// True when this finding fails the run.
    pub denies: bool,
}

/// Analysis configuration.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Promote warn-level lints (D1, L1) to deny.
    pub deny_all: bool,
    /// Run P1 on every file instead of only the server/store/replica
    /// request paths (fixtures).
    pub p1_everywhere: bool,
}

/// The result of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived suppression, sorted by (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by suppression comments.
    pub suppressed: usize,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    /// True when any finding denies (fails the run).
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.denies)
    }
}

/// Analyzes `(path, source)` pairs and produces a report.
pub fn analyze_sources(sources: &[(String, String)], opts: &Options) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::parse(p, s))
        .collect();
    let raw = lints::run_lints(
        &files,
        &LintOptions {
            p1_everywhere: opts.p1_everywhere,
        },
    );

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    let mut per_file_suppressions: Vec<Vec<suppress::Suppression>> = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        let (good, bad) = suppress::collect(&sf.lexed);
        for b in &bad {
            findings.push(Finding {
                lint: Lint::S0,
                path: sf.path.clone(),
                line: b.line,
                col: 1,
                message: format!("malformed suppression: {}", b.problem),
                denies: true,
            });
        }
        // Unknown lint codes in otherwise well-formed suppressions are also
        // S0: a typo'd code would otherwise silently waive nothing.
        for s in &good {
            if !matches!(s.code.as_str(), "D1" | "U1" | "L1" | "P1") {
                findings.push(Finding {
                    lint: Lint::S0,
                    path: sf.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("suppression names unknown lint `{}`", s.code),
                    denies: true,
                });
            }
        }
        let _ = fi;
        per_file_suppressions.push(good);
    }

    for r in raw {
        let sf = &files[r.file];
        let sup = &per_file_suppressions[r.file];
        let waived = sup
            .iter()
            .any(|s| s.code == r.lint.code() && (s.line == r.line || s.line + 1 == r.line));
        if waived {
            suppressed += 1;
            continue;
        }
        findings.push(Finding {
            lint: r.lint,
            path: sf.path.clone(),
            line: r.line,
            col: r.col,
            message: r.message,
            denies: r.lint.denies_by_default() || opts.deny_all,
        });
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    Report {
        findings,
        suppressed,
        files: files.len(),
    }
}

/// Renders a report as a human-readable listing.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let sev = if f.denies { "deny" } else { "warn" };
        out.push_str(&format!(
            "{}:{}:{}: [{}/{}] {}\n",
            f.path,
            f.line,
            f.col,
            f.lint.code(),
            sev,
            f.message
        ));
    }
    let denied = report.findings.iter().filter(|f| f.denies).count();
    let warned = report.findings.len() - denied;
    out.push_str(&format!(
        "{} file(s) analyzed: {} deny finding(s), {} warning(s), {} suppressed\n",
        report.files, denied, warned, report.suppressed
    ));
    out
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a report as a single JSON object (stable field order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"lint\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.lint.code(),
            if f.denies { "deny" } else { "warn" },
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"files\":{},\"suppressed\":{},\"failed\":{}}}",
        report.files,
        report.suppressed,
        report.failed()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, opts: &Options) -> Report {
        analyze_sources(&[("crates/server/src/demo.rs".into(), src.into())], opts)
    }

    #[test]
    fn suppression_waives_matching_line_and_next() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pdb-lint: allow(P1, reason = \"checked by caller\")\n    x.unwrap()\n}\n";
        let r = run(src, &Options::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pdb-lint: allow(P1)\n    x.unwrap()\n}\n";
        let r = run(src, &Options::default());
        assert!(r.failed());
        assert!(r.findings.iter().any(|f| f.lint == Lint::S0));
        assert!(r.findings.iter().any(|f| f.lint == Lint::P1));
    }

    #[test]
    fn unknown_lint_code_is_a_finding() {
        let src = "// pdb-lint: allow(Z9, reason = \"typo\")\nfn f() {}\n";
        let r = run(src, &Options::default());
        assert!(r.failed());
        assert!(r.findings.iter().any(|f| f.lint == Lint::S0));
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, f64>) -> f64 {\n    let mut s = 0.0f64;\n    for (_k, v) in &m { s += v; }\n    s\n}\n";
        let warn = run(src, &Options::default());
        assert!(!warn.failed(), "{:?}", warn.findings);
        assert_eq!(warn.findings.len(), 1);
        let deny = run(
            src,
            &Options {
                deny_all: true,
                ..Options::default()
            },
        );
        assert!(deny.failed());
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = run(src, &Options::default());
        let js = render_json(&r);
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"lint\":\"P1\""));
        assert!(js.contains("\"failed\":true"));
    }
}
