//! # pdb-analyze — in-tree invariant linter for the probdb workspace
//!
//! A dependency-free static-analysis pass over the workspace's own Rust
//! sources. It ships its own small lexer (`lexer`), a token-shape
//! structural model (`model`), a workspace symbol table and call graph
//! (`resolve`, `graph`), a reachability framework (`reach`), per-file
//! token lints (`lints`), and interprocedural lints on the call graph
//! (`interproc`):
//!
//! | code | default | invariant |
//! |------|---------|-----------|
//! | `D1` | warn    | no hash-ordered iteration feeding FP accumulation or output |
//! | `U1` | deny    | every `unsafe` carries a `// SAFETY:` audit comment |
//! | `L1` | warn    | lock acquisition graph is acyclic; no guard held across blocking calls |
//! | `P1` | deny    | no panic (unwrap/expect/macros/indexing) on the server request path |
//! | `S0` | deny    | suppression comments carry a non-empty reason |
//! | `A1` | warn    | no allocation reachable from the evaluation hot roots |
//! | `B1` | warn    | no blocking call reachable from pool workers or the request loop |
//! | `F1` | warn    | no float accumulation fed by hash or parallel operand order |
//! | `W1` | deny    | every acked mutation passes the WAL append first |
//! | `B0` | deny    | baseline entries parse and still match a finding |
//!
//! Findings can be waived in place with
//! `// pdb-lint: allow(<lint>, reason = "…")` on the offending line or the
//! line above. The reason is mandatory — an unexplained waiver is itself a
//! finding (`S0`). The heuristic lints additionally honor a committed
//! baseline file (`baseline`): grandfathered findings are reported in a
//! separate `baselined` section and do not fail the run, while entries
//! that no longer match anything deny (`B0`) so the file only ratchets
//! down.
//!
//! The `probdb-lint` binary runs the pass over explicit paths or the whole
//! workspace (`--workspace`), prints human or `--json` reports (plus a
//! `--stats` call-graph summary), and exits nonzero when any denying
//! finding survives suppression.

pub mod baseline;
pub mod graph;
pub mod interproc;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod reach;
pub mod resolve;
pub mod suppress;

pub use graph::GraphStats;
pub use lints::{Lint, LintOptions};

use model::SourceFile;
use std::collections::BTreeMap;

/// One reported problem, after suppression filtering.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The lint that fired.
    pub lint: Lint,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
    /// True when this finding fails the run.
    pub denies: bool,
    /// Baseline key (`fn site`) for findings the ratchet can carry.
    pub key: Option<String>,
}

/// A finding covered by a baseline entry, with the entry's reason.
#[derive(Clone, Debug)]
pub struct Baselined {
    /// The grandfathered finding (reported, never denying).
    pub finding: Finding,
    /// The written reason from the baseline file.
    pub reason: String,
}

/// Analysis configuration.
#[derive(Clone, Debug, Default)]
pub struct Options {
    /// Promote warn-level lints (D1, L1, A1, B1, F1) to deny.
    pub deny_all: bool,
    /// Run P1 on every file instead of only the request/durability paths
    /// (fixtures).
    pub p1_everywhere: bool,
    /// Drop the crate filters on interprocedural root specs (fixtures).
    pub hot_everywhere: bool,
    /// Baseline file as `(display path, contents)`.
    pub baseline: Option<(String, String)>,
}

/// The result of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived suppression and the baseline, sorted by
    /// (path, line, col, lint).
    pub findings: Vec<Finding>,
    /// Findings covered by baseline entries (tracked, not failing).
    pub baselined: Vec<Baselined>,
    /// Number of findings silenced by suppression comments.
    pub suppressed: usize,
    /// Suppression counts per lint code.
    pub suppressed_by_lint: BTreeMap<String, usize>,
    /// Number of files analyzed.
    pub files: usize,
    /// Call-graph statistics from the interprocedural pass.
    pub stats: GraphStats,
}

impl Report {
    /// True when any finding denies (fails the run).
    pub fn failed(&self) -> bool {
        self.findings.iter().any(|f| f.denies)
    }
}

/// Lint codes accepted in suppression comments.
const KNOWN_CODES: &[&str] = &["D1", "U1", "L1", "P1", "A1", "B1", "F1", "W1"];

/// Analyzes `(path, source)` pairs and produces a report.
pub fn analyze_sources(sources: &[(String, String)], opts: &Options) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(p, s)| SourceFile::parse(p, s))
        .collect();
    let mut raw = lints::run_lints(
        &files,
        &LintOptions {
            p1_everywhere: opts.p1_everywhere,
        },
    );
    let (inter, stats) = interproc::run_interproc(
        &files,
        &interproc::InterprocOptions {
            hot_everywhere: opts.hot_everywhere,
        },
    );
    raw.extend(inter);

    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed = 0usize;
    let mut suppressed_by_lint: BTreeMap<String, usize> = BTreeMap::new();
    let mut per_file_suppressions: Vec<Vec<suppress::Suppression>> = Vec::new();
    for sf in &files {
        let (good, bad) = suppress::collect(&sf.lexed);
        for b in &bad {
            findings.push(Finding {
                lint: Lint::S0,
                path: sf.path.clone(),
                line: b.line,
                col: 1,
                message: format!("malformed suppression: {}", b.problem),
                denies: true,
                key: None,
            });
        }
        // Unknown lint codes in otherwise well-formed suppressions are also
        // S0: a typo'd code would otherwise silently waive nothing.
        for s in &good {
            if !KNOWN_CODES.contains(&s.code.as_str()) {
                findings.push(Finding {
                    lint: Lint::S0,
                    path: sf.path.clone(),
                    line: s.line,
                    col: 1,
                    message: format!("suppression names unknown lint `{}`", s.code),
                    denies: true,
                    key: None,
                });
            }
        }
        per_file_suppressions.push(good);
    }

    let base = opts
        .baseline
        .as_ref()
        .map(|(_, text)| baseline::parse(text))
        .unwrap_or_default();
    let mut baselined: Vec<Baselined> = Vec::new();
    let mut used_entries = vec![false; base.entries.len()];

    for r in raw {
        let sf = &files[r.file];
        let sup = &per_file_suppressions[r.file];
        let waived = sup
            .iter()
            .any(|s| s.code == r.lint.code() && (s.line == r.line || s.line + 1 == r.line));
        if waived {
            suppressed += 1;
            *suppressed_by_lint
                .entry(r.lint.code().to_string())
                .or_insert(0) += 1;
            continue;
        }
        let finding = Finding {
            lint: r.lint,
            path: sf.path.clone(),
            line: r.line,
            col: r.col,
            message: r.message,
            denies: r.lint.denies_by_default() || opts.deny_all,
            key: r.key,
        };
        let entry = finding
            .key
            .as_deref()
            .and_then(|k| base.matching(finding.lint.code(), &finding.path, k));
        match entry {
            Some(ei) => {
                used_entries[ei] = true;
                baselined.push(Baselined {
                    reason: base.entries[ei].reason.clone(),
                    finding: Finding {
                        denies: false,
                        ..finding
                    },
                });
            }
            None => findings.push(finding),
        }
    }

    // Baseline hygiene: malformed lines and entries that matched nothing
    // deny. A fixed finding must shrink the baseline with it.
    if let Some((base_path, _)) = &opts.baseline {
        for (line_no, problem) in &base.problems {
            findings.push(Finding {
                lint: Lint::B0,
                path: base_path.clone(),
                line: *line_no,
                col: 1,
                message: format!("malformed baseline entry: {problem}"),
                denies: true,
                key: None,
            });
        }
        for (ei, used) in used_entries.iter().enumerate() {
            if !used {
                let e = &base.entries[ei];
                findings.push(Finding {
                    lint: Lint::B0,
                    path: base_path.clone(),
                    line: e.line_no,
                    col: 1,
                    message: format!(
                        "stale baseline entry `{} {} {}` matches no finding — the debt was \
                         paid; remove the line so the ratchet tightens",
                        e.lint, e.path, e.key
                    ),
                    denies: true,
                    key: None,
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    baselined.sort_by(|a, b| {
        (a.finding.path.as_str(), a.finding.line, a.finding.col).cmp(&(
            b.finding.path.as_str(),
            b.finding.line,
            b.finding.col,
        ))
    });
    Report {
        findings,
        baselined,
        suppressed,
        suppressed_by_lint,
        files: files.len(),
        stats,
    }
}

/// Renders a report as a human-readable listing.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let sev = if f.denies { "deny" } else { "warn" };
        out.push_str(&format!(
            "{}:{}:{}: [{}/{}] {}\n",
            f.path,
            f.line,
            f.col,
            f.lint.code(),
            sev,
            f.message
        ));
    }
    let denied = report.findings.iter().filter(|f| f.denies).count();
    let warned = report.findings.len() - denied;
    out.push_str(&format!(
        "{} file(s) analyzed: {} deny finding(s), {} warning(s), {} suppressed, {} baselined\n",
        report.files,
        denied,
        warned,
        report.suppressed,
        report.baselined.len()
    ));
    out
}

/// Renders the call-graph statistics line shown by `--stats`.
pub fn render_stats(stats: &GraphStats) -> String {
    format!(
        "stats: {} files, {} functions, {} call sites, {} edges, {:.1}% resolved",
        stats.files,
        stats.functions,
        stats.call_sites,
        stats.edges,
        stats.resolution_rate() * 100.0
    )
}

/// Escapes a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(f: &Finding) -> String {
    let key = match &f.key {
        Some(k) => format!(",\"key\":\"{}\"", json_escape(k)),
        None => String::new(),
    };
    format!(
        "{{\"lint\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"{key}}}",
        f.lint.code(),
        if f.denies { "deny" } else { "warn" },
        json_escape(&f.path),
        f.line,
        f.col,
        json_escape(&f.message)
    )
}

/// Renders a report as a single JSON object (stable field order).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_finding(f));
    }
    out.push_str("],\"baselined\":[");
    for (i, b) in report.baselined.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut obj = json_finding(&b.finding);
        obj.truncate(obj.len() - 1);
        obj.push_str(&format!(",\"reason\":\"{}\"}}", json_escape(&b.reason)));
        out.push_str(&obj);
    }
    out.push_str("],\"suppressed_by_lint\":{");
    for (i, (code, n)) in report.suppressed_by_lint.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{n}", json_escape(code)));
    }
    out.push_str(&format!(
        "}},\"stats\":{{\"files\":{},\"functions\":{},\"call_sites\":{},\"resolved\":{},\"edges\":{},\"resolution_rate\":{:.4}}}",
        report.stats.files,
        report.stats.functions,
        report.stats.call_sites,
        report.stats.resolved,
        report.stats.edges,
        report.stats.resolution_rate()
    ));
    out.push_str(&format!(
        ",\"files\":{},\"suppressed\":{},\"failed\":{}}}",
        report.files,
        report.suppressed,
        report.failed()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, opts: &Options) -> Report {
        analyze_sources(&[("crates/server/src/demo.rs".into(), src.into())], opts)
    }

    #[test]
    fn suppression_waives_matching_line_and_next() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pdb-lint: allow(P1, reason = \"checked by caller\")\n    x.unwrap()\n}\n";
        let r = run(src, &Options::default());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.suppressed_by_lint.get("P1"), Some(&1));
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // pdb-lint: allow(P1)\n    x.unwrap()\n}\n";
        let r = run(src, &Options::default());
        assert!(r.failed());
        assert!(r.findings.iter().any(|f| f.lint == Lint::S0));
        assert!(r.findings.iter().any(|f| f.lint == Lint::P1));
    }

    #[test]
    fn unknown_lint_code_is_a_finding() {
        let src = "// pdb-lint: allow(Z9, reason = \"typo\")\nfn f() {}\n";
        let r = run(src, &Options::default());
        assert!(r.failed());
        assert!(r.findings.iter().any(|f| f.lint == Lint::S0));
    }

    #[test]
    fn new_lint_codes_are_suppressible() {
        let src = "// pdb-lint: allow(A1, reason = \"setup path, runs once\")\nfn f() {}\n";
        let r = run(src, &Options::default());
        assert!(!r.failed(), "{:?}", r.findings);
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, f64>) -> f64 {\n    let mut s = 0.0f64;\n    for (_k, v) in &m { s += v; }\n    s\n}\n";
        let warn = run(src, &Options::default());
        assert!(!warn.failed(), "{:?}", warn.findings);
        assert_eq!(warn.findings.len(), 1);
        let deny = run(
            src,
            &Options {
                deny_all: true,
                ..Options::default()
            },
        );
        assert!(deny.failed());
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let r = run(src, &Options::default());
        let js = render_json(&r);
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"lint\":\"P1\""));
        assert!(js.contains("\"failed\":true"));
        assert!(js.contains("\"stats\":{"));
        assert!(js.contains("\"baselined\":["));
    }

    #[test]
    fn baseline_carries_findings_without_failing() {
        let src = "pub fn eval(xs: &[u32]) -> Vec<u32> { xs.to_vec() }\n";
        let opts = Options {
            deny_all: true,
            hot_everywhere: true,
            baseline: Some((
                "crates/analyze/baseline.txt".into(),
                "A1 crates/server/src/demo.rs eval xs.to_vec() -- boxed return is the API\n".into(),
            )),
            ..Options::default()
        };
        let r = run(src, &opts);
        assert!(!r.failed(), "{:?}", r.findings);
        assert_eq!(r.baselined.len(), 1, "{:?}", r.baselined);
        assert_eq!(r.baselined[0].reason, "boxed return is the API");
        // Without the baseline the same run fails under --deny-all.
        let bare = run(
            src,
            &Options {
                deny_all: true,
                hot_everywhere: true,
                ..Options::default()
            },
        );
        assert!(bare.failed(), "{:?}", bare.findings);
    }

    #[test]
    fn stale_baseline_entries_deny() {
        let opts = Options {
            baseline: Some((
                "crates/analyze/baseline.txt".into(),
                "A1 crates/server/src/demo.rs eval gone.clone() -- was fixed long ago\n".into(),
            )),
            ..Options::default()
        };
        let r = run("fn quiet() {}\n", &opts);
        assert!(r.failed(), "{:?}", r.findings);
        let b0 = r.findings.iter().find(|f| f.lint == Lint::B0).unwrap();
        assert!(b0.message.contains("stale"), "{}", b0.message);
        assert_eq!(b0.path, "crates/analyze/baseline.txt");
    }

    #[test]
    fn malformed_baseline_entries_deny() {
        let opts = Options {
            baseline: Some((
                "crates/analyze/baseline.txt".into(),
                "A1 crates/a/src/lib.rs f v.clone()\n".into(),
            )),
            ..Options::default()
        };
        let r = run("fn quiet() {}\n", &opts);
        assert!(r.failed());
        assert!(r.findings.iter().any(|f| f.lint == Lint::B0));
    }
}
