//! `// pdb-lint: allow(<LINT>, reason = "…")` suppression comments.
//!
//! A suppression silences findings of the named lint on the comment's own
//! line or on the line directly below it (so it can sit at the end of the
//! offending line or on its own line just above). The reason is mandatory:
//! a suppression without one is itself reported (lint `S0`), because an
//! unexplained waiver is how audited invariants rot.

use crate::lexer::Lexed;

/// One parsed suppression comment.
#[derive(Clone, Debug, PartialEq)]
pub struct Suppression {
    /// The lint code being allowed (`D1`, `U1`, `L1`, `P1`).
    pub code: String,
    /// The mandatory free-text justification.
    pub reason: String,
    /// The line the comment *ends* on; it covers this line and the next.
    pub line: u32,
}

/// A malformed suppression (reported as an `S0` finding by the driver).
#[derive(Clone, Debug, PartialEq)]
pub struct BadSuppression {
    /// The line the comment ends on.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Extracts every suppression (and malformed attempt) from a file's
/// comments.
pub fn collect(lexed: &Lexed) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for c in &lexed.comments {
        // Doc comments describe code (including, recursively, this very
        // syntax); only plain comments carry live suppressions.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("pdb-lint:") else {
            continue;
        };
        let rest = c.text[pos + "pdb-lint:".len()..].trim_start();
        match parse_allow(rest) {
            Ok((code, reason)) => good.push(Suppression {
                code,
                reason,
                line: c.end_line,
            }),
            Err(problem) => bad.push(BadSuppression {
                line: c.end_line,
                problem,
            }),
        }
    }
    (good, bad)
}

/// Parses `allow(<CODE>, reason = "…")`.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<lint>, reason = \"…\")` after `pdb-lint:`, got {rest:?}"
        ));
    };
    let code: String = args
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric())
        .collect();
    if code.is_empty() {
        return Err("missing lint code in `allow(...)`".into());
    }
    let after_code = &args[code.len()..];
    let after_code = after_code.trim_start();
    let Some(after_comma) = after_code.strip_prefix(',') else {
        return Err(format!(
            "suppression of {code} is missing the mandatory `, reason = \"…\"`"
        ));
    };
    let after_comma = after_comma.trim_start();
    let Some(after_kw) = after_comma.strip_prefix("reason") else {
        return Err(format!(
            "suppression of {code} is missing the mandatory `reason = \"…\"`"
        ));
    };
    let after_kw = after_kw.trim_start();
    let Some(after_eq) = after_kw.strip_prefix('=') else {
        return Err(format!(
            "suppression of {code}: expected `=` after `reason`"
        ));
    };
    let after_eq = after_eq.trim_start();
    let Some(quoted) = after_eq.strip_prefix('"') else {
        return Err(format!(
            "suppression of {code}: reason must be a double-quoted string"
        ));
    };
    let Some(endq) = quoted.find('"') else {
        return Err(format!("suppression of {code}: unterminated reason string"));
    };
    let reason = &quoted[..endq];
    if reason.trim().is_empty() {
        return Err(format!("suppression of {code}: reason must not be empty"));
    }
    let tail = quoted[endq + 1..].trim_start();
    if !tail.starts_with(')') {
        return Err(format!("suppression of {code}: expected `)` after reason"));
    }
    Ok((code, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_well_formed_suppressions() {
        let lx = lex("// pdb-lint: allow(D1, reason = \"sorted three lines below\")\nlet x = 1;");
        let (good, bad) = collect(&lx);
        assert!(bad.is_empty());
        assert_eq!(
            good,
            vec![Suppression {
                code: "D1".into(),
                reason: "sorted three lines below".into(),
                line: 1
            }]
        );
    }

    #[test]
    fn reason_is_mandatory() {
        for text in [
            "// pdb-lint: allow(P1)",
            "// pdb-lint: allow(P1, reason = \"\")",
            "// pdb-lint: allow(P1, reason = )",
            "// pdb-lint: deny(P1)",
            "// pdb-lint: allow(, reason = \"x\")",
        ] {
            let (good, bad) = collect(&lex(text));
            assert!(good.is_empty(), "{text}");
            assert_eq!(bad.len(), 1, "{text}");
        }
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let (good, bad) = collect(&lex("// a note mentioning lints in passing\nlet x = 1;"));
        assert!(good.is_empty() && bad.is_empty());
    }
}
