//! Call-site extraction and resolution over the workspace symbol table.
//!
//! Every `name(…)` shape outside attributes and macro invocations becomes a
//! [`CallSite`] and is resolved into one of three classes:
//!
//! - **Workspace** — a unique workspace `fn`. Contributes a call edge.
//! - **External** — confidently std/foreign (std module paths, non-workspace
//!   receiver types, constructors, names the workspace never defines).
//! - **Ambiguous** — several workspace candidates and no discriminating
//!   evidence. No edge: reachability under-approximates rather than
//!   fanning out to every same-named method.
//!
//! Method receivers get one level of type inference: `recv: Type`
//! declarations (params, fields) and `let recv = Type::new(…)` initializers
//! in the enclosing function (falling back to file scope), with
//! `Arc`/`Rc`/`Box` peeled to the pointee. `resolved / call_sites` is the
//! resolution rate the CI `--stats` line reports and gates on.

use crate::lexer::TokKind;
use crate::model::{receiver_chain, SourceFile};
use crate::resolve::{build_symbols, norm_crate, FnInfo, SymbolTable};

/// What a call site resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// A unique workspace function (fn id).
    Workspace(usize),
    /// Confidently not a workspace function.
    External,
    /// Workspace candidates exist but none is uniquely supported.
    Ambiguous,
}

/// One syntactic call.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Index of the file in the analyzed set.
    pub file: usize,
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based line of the callee name.
    pub line: u32,
    /// The callee name as written.
    pub name: String,
    /// Enclosing function (fn id), when the call is inside one.
    pub caller: Option<usize>,
    /// Resolution class.
    pub resolution: Resolution,
}

/// Aggregate numbers for `--stats` and the CI gate.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphStats {
    /// Files analyzed.
    pub files: usize,
    /// Function items found.
    pub functions: usize,
    /// Call sites extracted.
    pub call_sites: usize,
    /// Sites classed Workspace or External (not Ambiguous).
    pub resolved: usize,
    /// Caller → callee edges (workspace resolutions inside functions).
    pub edges: usize,
}

impl GraphStats {
    /// `resolved / call_sites` in `[0, 1]`; 1.0 when there are no sites.
    pub fn resolution_rate(&self) -> f64 {
        if self.call_sites == 0 {
            return 1.0;
        }
        self.resolved as f64 / self.call_sites as f64
    }
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// The underlying symbol table.
    pub symbols: SymbolTable,
    /// Every extracted call site.
    pub sites: Vec<CallSite>,
    /// Per caller fn id: `(callee fn id, site index)`.
    pub callees: Vec<Vec<(usize, usize)>>,
    /// Per callee fn id: `(caller fn id, site index)`.
    pub callers: Vec<Vec<(usize, usize)>>,
    /// Aggregate numbers.
    pub stats: GraphStats,
}

/// Keywords that read like `name(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "else",
    "use", "pub", "unsafe", "where", "impl", "dyn", "ref", "mut", "box", "await", "break",
    "continue", "struct", "enum", "trait", "mod", "const", "static", "type", "crate", "super",
    "self", "Self",
];

/// Std/core module path heads and segments: a path qualified by one of
/// these is external by construction.
const STD_MODULES: &[&str] = &[
    "std",
    "core",
    "alloc",
    "mem",
    "ptr",
    "fmt",
    "cmp",
    "iter",
    "slice",
    "str",
    "char",
    "time",
    "thread",
    "process",
    "env",
    "fs",
    "io",
    "net",
    "sync",
    "mpsc",
    "atomic",
    "collections",
    "ops",
    "num",
    "panic",
    "hint",
    "array",
    "task",
    "borrow",
    "convert",
    "hash",
    "marker",
    "option",
    "result",
    "vec",
    "string",
    "boxed",
    "arch",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "bool",
];

/// Method names so generic (`Vec`, maps, iterators, guards all have them)
/// that, without receiver-type evidence, a candidate-count vote would be
/// noise. With no inferred type these resolve External; with an inferred
/// workspace type they resolve normally.
const COMMON_METHOD_NAMES: &[&str] = &[
    "len", "is_empty", "get", "push", "pop", "clear", "contains", "extend", "insert", "remove",
    "iter", "clone", "next", "min", "max", "take", "get_mut", "new", "fmt", "eq", "cmp", "run",
    "expect", "unwrap", "write", "read", "send", "flush", "join",
];

/// Wrappers peeled to their pointee during receiver-type inference: smart
/// pointers, and lock types whose guards deref to the protected value
/// (`views: Mutex<ViewManager>` types its guard's methods as
/// `ViewManager`'s).
const DEREF_TYPES: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "RefCell",
    "Cell",
    "Mutex",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "Option",
];

fn is_capitalized(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Token ranges covered by `#[…]` attributes (no calls inside).
fn attr_ranges(sf: &SourceFile) -> Vec<(usize, usize)> {
    let toks = sf.tokens();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
            if let Some(close) = sf.lexed.match_of(i + 1) {
                out.push((i, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Walks back from the callee name over `seg::seg::…::` and returns the
/// qualifying segments (empty for an unqualified call). Gives up on
/// qualified-generic prefixes (`Vec::<u8>::new`) — rare enough to leave
/// ambiguous.
fn path_qualifier(sf: &SourceFile, name_tok: usize) -> Vec<String> {
    let toks = sf.tokens();
    let mut segs: Vec<String> = Vec::new();
    let mut j = name_tok;
    while j >= 2 && toks[j - 1].is_punct("::") {
        let prev = &toks[j - 2];
        if prev.kind != TokKind::Ident {
            break;
        }
        segs.push(prev.text.clone());
        j -= 2;
    }
    segs.reverse();
    segs
}

/// Skips a turbofish `::<…>` after `name` and reports whether a `(`
/// follows, i.e. `name::<T>(…)` is a call of `name`.
fn turbofish_call(sf: &SourceFile, name_tok: usize) -> bool {
    let toks = sf.tokens();
    if !(toks.get(name_tok + 1).is_some_and(|t| t.is_punct("::"))
        && toks.get(name_tok + 2).is_some_and(|t| t.is_punct("<")))
    {
        return false;
    }
    let mut depth = 0i32;
    let mut j = name_tok + 2;
    while j < toks.len() && j < name_tok + 64 {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            ";" | "{" | "}" => return false,
            _ => {}
        }
        if depth <= 0 {
            return toks.get(j + 1).is_some_and(|t| t.is_punct("("));
        }
        j += 1;
    }
    false
}

/// Reads the type name out of a path starting at token `k`: the last
/// capitalized segment of `seg::seg::…`, with `Arc`/`Rc`/`Box` peeled to
/// the next capitalized identifier (`Arc<Mutex<T>>` → `Mutex`,
/// `Arc::new(Pool…)` → `Pool`).
fn type_from_path(sf: &SourceFile, mut k: usize) -> Option<String> {
    let toks = sf.tokens();
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == TokKind::Lifetime)
    {
        k += 1;
    }
    let mut ty: Option<String> = None;
    while let Some(t) = toks.get(k) {
        if t.kind == TokKind::Ident {
            if is_capitalized(&t.text) {
                ty = Some(t.text.clone());
            }
            if toks.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                k += 2;
                continue;
            }
        }
        break;
    }
    // Peel smart pointers: look a few tokens past the pointer type for the
    // pointee (`Arc<Mutex<…>>`, `Arc::new(Pool::new(…))`).
    let mut depth = 0;
    while let Some(t) = ty.as_deref() {
        if !DEREF_TYPES.contains(&t) || depth > 3 {
            break;
        }
        depth += 1;
        let mut inner = None;
        for step in 1..8 {
            match toks.get(k + step) {
                Some(n) if n.kind == TokKind::Ident && is_capitalized(&n.text) => {
                    inner = Some((n.text.clone(), k + step));
                    break;
                }
                Some(n) if n.is_punct(";") || n.is_punct("{") => break,
                Some(_) => {}
                None => break,
            }
        }
        match inner {
            Some((name, at)) => {
                ty = Some(name);
                k = at;
            }
            None => break,
        }
    }
    ty
}

/// Infers the type of `recv` from declarations in `lo..hi` (an enclosing-fn
/// token range, or the whole file): `recv: Type` (params, struct fields,
/// field inits with a constructor) and `let [mut] recv = Type::…`.
fn infer_type_in(sf: &SourceFile, recv: &str, lo: usize, hi: usize) -> Option<String> {
    let toks = sf.tokens();
    let hi = hi.min(toks.len());
    for k in lo..hi {
        if !toks[k].is_ident(recv) {
            continue;
        }
        // `recv : <type-or-ctor-path>`
        if toks.get(k + 1).is_some_and(|t| t.is_punct(":")) {
            if let Some(ty) = type_from_path(sf, k + 2) {
                return Some(ty);
            }
        }
        // `let [mut] recv = <ctor-path>`
        let mut b = k;
        while b >= 1 && toks[b - 1].is_ident("mut") {
            b -= 1;
        }
        if b >= 1 && toks[b - 1].is_ident("let") && toks.get(k + 1).is_some_and(|t| t.is_punct("="))
        {
            if let Some(ty) = type_from_path(sf, k + 2) {
                return Some(ty);
            }
        }
    }
    None
}

/// True when `name` is bound to a closure in `lo..hi` (`let name = |…|` /
/// `let name = move |…|`), so a bare `name(…)` is not a workspace call.
fn is_local_closure(sf: &SourceFile, name: &str, lo: usize, hi: usize) -> bool {
    let toks = sf.tokens();
    let hi = hi.min(toks.len());
    for k in lo..hi {
        if toks[k].is_ident(name)
            && k >= 1
            && (toks[k - 1].is_ident("let") || toks[k - 1].is_ident("mut"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct("="))
            && toks
                .get(k + 2)
                .is_some_and(|t| t.is_punct("|") || t.is_ident("move"))
        {
            return true;
        }
    }
    false
}

struct Resolver<'a> {
    files: &'a [SourceFile],
    symbols: &'a SymbolTable,
}

impl Resolver<'_> {
    fn fns(&self) -> &[FnInfo] {
        &self.symbols.fns
    }

    fn candidates(&self, name: &str) -> &[usize] {
        self.symbols.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Unique candidate satisfying `pred`, else the crate-preference
    /// tiebreak, else Ambiguous/External by candidate count.
    fn vote(
        &self,
        cands: &[usize],
        site_file: usize,
        pred: impl Fn(&FnInfo) -> bool,
    ) -> Resolution {
        let matched: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| pred(&self.fns()[id]))
            .collect();
        match matched.len() {
            0 => Resolution::External,
            1 => Resolution::Workspace(matched[0]),
            _ => {
                let same_file: Vec<usize> = matched
                    .iter()
                    .copied()
                    .filter(|&id| self.fns()[id].file == site_file)
                    .collect();
                if same_file.len() == 1 {
                    return Resolution::Workspace(same_file[0]);
                }
                let krate = &self.files[site_file].crate_name;
                let same_crate: Vec<usize> = matched
                    .iter()
                    .copied()
                    .filter(|&id| &self.files[self.fns()[id].file].crate_name == krate)
                    .collect();
                if same_crate.len() == 1 {
                    return Resolution::Workspace(same_crate[0]);
                }
                Resolution::Ambiguous
            }
        }
    }

    fn resolve_path(
        &self,
        file: usize,
        name: &str,
        qual: &[String],
        caller: Option<&FnInfo>,
    ) -> Resolution {
        let q = qual.last().map(String::as_str).unwrap_or("");
        if q == "Self" {
            let self_ty = caller.and_then(|c| c.self_type.clone());
            return match self_ty {
                Some(ty) => self.vote(self.candidates(name), file, |f| {
                    f.self_type.as_deref() == Some(&ty)
                }),
                None => Resolution::Ambiguous,
            };
        }
        if is_capitalized(q) {
            if self.symbols.impl_types.contains(q) {
                return self.vote(self.candidates(name), file, |f| {
                    f.self_type.as_deref() == Some(q)
                });
            }
            return Resolution::External; // std / foreign type
        }
        let qn = norm_crate(q);
        if qn == "crate" || q == "self" || q == "super" {
            let krate = &self.files[file].crate_name;
            return self.vote(self.candidates(name), file, |f| {
                &self.files[f.file].crate_name == krate
            });
        }
        if self.symbols.crates.contains(qn) {
            return self.vote(self.candidates(name), file, |f| {
                norm_crate(&self.files[f.file].crate_name) == qn
            });
        }
        if self.symbols.modules.contains(q) {
            return self.vote(self.candidates(name), file, |f| {
                self.files[f.file]
                    .path
                    .rsplit('/')
                    .next()
                    .is_some_and(|n| n.strip_suffix(".rs") == Some(q))
            });
        }
        if STD_MODULES.contains(&q)
            || qual
                .first()
                .is_some_and(|h| STD_MODULES.contains(&h.as_str()))
        {
            return Resolution::External;
        }
        Resolution::External // unknown lowercase qualifier: a local module alias
    }

    fn resolve_method(
        &self,
        file: usize,
        name: &str,
        tok: usize,
        caller: Option<&FnInfo>,
    ) -> Resolution {
        let sf = &self.files[file];
        let toks = sf.tokens();
        // Plain `self.name(…)`.
        let plain_self =
            tok >= 2 && toks[tok - 2].is_ident("self") && (tok < 3 || !toks[tok - 3].is_punct("."));
        if plain_self {
            if let Some(ty) = caller.and_then(|c| c.self_type.as_deref()) {
                let r = self.vote(self.candidates(name), file, |f| {
                    f.self_type.as_deref() == Some(ty)
                });
                if !matches!(r, Resolution::External) {
                    return r;
                }
            }
        }
        // Receiver-type inference: the last field in the receiver chain,
        // looked up in the enclosing fn first, then file-wide.
        let chain = receiver_chain(&sf.lexed, tok as isize - 2);
        let ty = chain.last().and_then(|recv| {
            let scoped = caller.filter(|c| c.file == file).and_then(|c| {
                let (_, close) = c.body?;
                infer_type_in(sf, recv, c.fn_tok, close)
            });
            scoped.or_else(|| infer_type_in(sf, recv, 0, toks.len()))
        });
        if let Some(ty) = ty.as_deref() {
            if self.symbols.impl_types.contains(ty) {
                return self.vote(self.candidates(name), file, |f| {
                    f.self_type.as_deref() == Some(ty) && f.has_self
                });
            }
            return Resolution::External; // receiver typed to a non-workspace type
        }
        if COMMON_METHOD_NAMES.contains(&name) {
            return Resolution::External;
        }
        self.vote(self.candidates(name), file, |f| f.has_self)
    }

    fn resolve_bare(&self, file: usize, name: &str, caller: Option<&FnInfo>) -> Resolution {
        if is_capitalized(name) {
            return Resolution::External; // tuple-struct / enum constructor
        }
        let sf = &self.files[file];
        if let Some(c) = caller.filter(|c| c.file == file) {
            if let Some((_, close)) = c.body {
                if is_local_closure(sf, name, c.fn_tok, close) {
                    return Resolution::External;
                }
            }
        }
        // An explicit import decides the crate.
        if let Some(path) = self.symbols.imports[file].get(name) {
            if let Some(head) = path.first() {
                let hn = norm_crate(head);
                if STD_MODULES.contains(&head.as_str()) {
                    return Resolution::External;
                }
                if self.symbols.crates.contains(hn) {
                    return self.vote(self.candidates(name), file, |f| {
                        f.self_type.is_none() && norm_crate(&self.files[f.file].crate_name) == hn
                    });
                }
            }
        }
        self.vote(self.candidates(name), file, |f| f.self_type.is_none())
    }
}

/// Builds the call graph for the analyzed set.
pub fn build(files: &[SourceFile]) -> CallGraph {
    let symbols = build_symbols(files);
    let resolver = Resolver {
        files,
        symbols: &symbols,
    };

    // Per-file fn ids, for enclosing-fn lookup.
    let mut file_fns: Vec<Vec<usize>> = vec![Vec::new(); files.len()];
    for (id, f) in symbols.fns.iter().enumerate() {
        file_fns[f.file].push(id);
    }
    let enclosing = |file: usize, tok: usize| -> Option<usize> {
        file_fns[file]
            .iter()
            .copied()
            .filter(|&id| matches!(symbols.fns[id].body, Some((a, b)) if tok > a && tok < b))
            .max_by_key(|&id| symbols.fns[id].body.map(|(a, _)| a))
    };

    let mut sites: Vec<CallSite> = Vec::new();
    for (fi, sf) in files.iter().enumerate() {
        let toks = sf.tokens();
        let attrs = attr_ranges(sf);
        let in_attr = |i: usize| attrs.iter().any(|&(a, b)| i >= a && i <= b);
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || NON_CALL_KEYWORDS.contains(&t.text.as_str())
                || in_attr(i)
            {
                continue;
            }
            let direct = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            if !direct && !turbofish_call(sf, i) {
                continue;
            }
            if i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct("!")) {
                continue; // definition, or macro-rules fragment
            }
            let caller = enclosing(fi, i);
            let caller_info = caller.map(|id| &symbols.fns[id]);
            let resolution = if i >= 1 && toks[i - 1].is_punct(".") {
                resolver.resolve_method(fi, &t.text, i, caller_info)
            } else if i >= 1 && toks[i - 1].is_punct("::") {
                let qual = path_qualifier(sf, i);
                if qual.is_empty() {
                    Resolution::Ambiguous // qualified-generic prefix we skip
                } else {
                    resolver.resolve_path(fi, &t.text, &qual, caller_info)
                }
            } else {
                resolver.resolve_bare(fi, &t.text, caller_info)
            };
            sites.push(CallSite {
                file: fi,
                tok: i,
                line: t.line,
                name: t.text.clone(),
                caller,
                resolution,
            });
        }
    }

    let mut callees: Vec<Vec<(usize, usize)>> = vec![Vec::new(); symbols.fns.len()];
    let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); symbols.fns.len()];
    let mut edges = 0usize;
    for (si, s) in sites.iter().enumerate() {
        if let (Some(c), Resolution::Workspace(g)) = (s.caller, &s.resolution) {
            callees[c].push((*g, si));
            callers[*g].push((c, si));
            edges += 1;
        }
    }
    let resolved = sites
        .iter()
        .filter(|s| !matches!(s.resolution, Resolution::Ambiguous))
        .count();
    let stats = GraphStats {
        files: files.len(),
        functions: symbols.fns.len(),
        call_sites: sites.len(),
        resolved,
        edges,
    };
    CallGraph {
        symbols,
        sites,
        callees,
        callers,
        stats,
    }
}

impl CallGraph {
    /// The site at `(file, tok)`, if one was extracted there.
    pub fn site_at(&self, file: usize, tok: usize) -> Option<&CallSite> {
        self.sites.iter().find(|s| s.file == file && s.tok == tok)
    }

    /// Workspace-resolved call sites within a token range of one file.
    pub fn sites_in<'a>(
        &'a self,
        file: usize,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = &'a CallSite> {
        self.sites
            .iter()
            .filter(move |s| s.file == file && s.tok > lo && s.tok < hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let g = build(&files);
        (files, g)
    }

    fn resolution_of<'g>(g: &'g CallGraph, name: &str) -> &'g Resolution {
        &g.sites
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no call site named {name}"))
            .resolution
    }

    #[test]
    fn bare_calls_prefer_same_file_then_unique_global() {
        let (_f, g) = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "fn helper() {}\nfn top() { helper(); distant(); }\n",
            ),
            ("crates/b/src/lib.rs", "pub fn distant() {}\n"),
        ]);
        assert!(matches!(
            resolution_of(&g, "helper"),
            Resolution::Workspace(_)
        ));
        assert!(matches!(
            resolution_of(&g, "distant"),
            Resolution::Workspace(_)
        ));
    }

    #[test]
    fn std_paths_and_constructors_are_external() {
        let (_f, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn top() { std::mem::take(&mut x); Vec::new(); Some(3); }\n",
        )]);
        assert_eq!(*resolution_of(&g, "take"), Resolution::External);
        assert_eq!(*resolution_of(&g, "new"), Resolution::External);
        assert_eq!(*resolution_of(&g, "Some"), Resolution::External);
    }

    #[test]
    fn crate_qualified_paths_resolve_across_crates() {
        let (_f, g) = graph_of(&[
            ("crates/wmc/src/dpll.rs", "pub fn solve() {}\n"),
            (
                "crates/server/src/service.rs",
                "fn top() { pdb_wmc::solve(); }\n",
            ),
        ]);
        let Resolution::Workspace(id) = resolution_of(&g, "solve") else {
            panic!("expected workspace resolution");
        };
        assert_eq!(g.symbols.fns[*id].name, "solve");
        assert_eq!(g.stats.edges, 1);
    }

    #[test]
    fn method_calls_use_receiver_type_inference() {
        let src = "pub struct Pool;\nimpl Pool { pub fn submit(&self) {} }\n\
                   fn top(pool: &Pool, m: &Mutex<u32>) { pool.submit(); m.lock(); }\n";
        let (_f, g) = graph_of(&[("crates/par/src/lib.rs", src)]);
        assert!(matches!(
            resolution_of(&g, "submit"),
            Resolution::Workspace(_)
        ));
        assert_eq!(*resolution_of(&g, "lock"), Resolution::External);
    }

    #[test]
    fn arc_receivers_peel_to_the_pointee() {
        let src = "pub struct Pool;\nimpl Pool { pub fn submit(&self) {} }\n\
                   fn top() { let pool = Arc::new(Pool); pool.submit(); }\n";
        let (_f, g) = graph_of(&[("crates/par/src/lib.rs", src)]);
        assert!(matches!(
            resolution_of(&g, "submit"),
            Resolution::Workspace(_)
        ));
    }

    #[test]
    fn self_methods_resolve_within_the_impl_type() {
        let src = "pub struct A;\npub struct B;\n\
                   impl A { fn go(&self) { self.step(); }\n fn step(&self) {} }\n\
                   impl B { fn step(&self) {} }\n";
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", src)]);
        let Resolution::Workspace(id) = resolution_of(&g, "step") else {
            panic!("expected workspace resolution");
        };
        assert_eq!(g.symbols.fns[*id].self_type.as_deref(), Some("A"));
    }

    #[test]
    fn local_closures_are_not_workspace_calls() {
        let src = "pub fn sat() {}\nfn top() { let sat = |x: u32| x; sat(3); }\n";
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", src)]);
        // Both the definition file's call and the closure shadow resolve
        // away from the workspace fn.
        assert_eq!(*resolution_of(&g, "sat"), Resolution::External);
    }

    #[test]
    fn macros_and_attributes_are_not_call_sites() {
        let src = "#[derive(Clone)]\nstruct S;\nfn top() { vec![1]; format!(\"x\"); }\n";
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert!(g.sites.is_empty(), "{:?}", g.sites);
    }

    #[test]
    fn turbofish_calls_are_extracted() {
        let src = "fn take<T>() -> T { todo!() }\nfn top() { take::<u32>(); }\n";
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", src)]);
        assert!(g
            .sites
            .iter()
            .any(|s| s.name == "take" && matches!(s.resolution, Resolution::Workspace(_))));
    }

    #[test]
    fn common_method_names_need_type_evidence() {
        let src = "pub struct M;\nimpl M { pub fn len(&self) -> usize { 0 } }\n\
                   fn a(m: &M) -> usize { m.len() }\nfn b(v: &Vec<u32>) -> usize { v.len() }\n";
        let (_f, g) = graph_of(&[("crates/a/src/lib.rs", src)]);
        let lens: Vec<&Resolution> = g
            .sites
            .iter()
            .filter(|s| s.name == "len")
            .map(|s| &s.resolution)
            .collect();
        assert!(matches!(lens[0], Resolution::Workspace(_)), "{lens:?}");
        assert_eq!(*lens[1], Resolution::External, "{lens:?}");
    }

    #[test]
    fn stats_count_sites_and_edges() {
        let (_f, g) = graph_of(&[(
            "crates/a/src/lib.rs",
            "fn x() {}\nfn top() { x(); String::new(); }\n",
        )]);
        assert_eq!(g.stats.call_sites, 2);
        assert_eq!(g.stats.resolved, 2);
        assert_eq!(g.stats.edges, 1);
        assert!(g.stats.resolution_rate() > 0.99);
    }
}
