//! Reachability queries over the call graph.
//!
//! Interprocedural lints phrase themselves as "is a *sink site* reachable
//! from a *root function*?". Forward BFS from the roots records one parent
//! pointer per reached function, so every finding can print a concrete
//! call-path trace (`root → f (file:line) → g (file:line)`) rather than a
//! bare "reachable". Reverse BFS answers the dual question — "can this
//! function end up inside a worker closure?" — with a next-hop per function
//! for the same reason.

use crate::graph::{CallGraph, Resolution};
use crate::model::SourceFile;
use std::collections::VecDeque;

/// How a function became reachable.
#[derive(Clone, Debug)]
pub enum Via {
    /// It is a root; the string names the root spec (e.g. `FlatProgram::eval`).
    Root(String),
    /// Called from `parent` at `line` of the parent's file.
    Call { parent: usize, line: u32 },
}

/// Forward reachability from a set of root functions.
#[derive(Debug)]
pub struct Reach {
    /// `via[f]` is `Some` iff fn `f` is reachable.
    pub via: Vec<Option<Via>>,
}

impl Reach {
    /// BFS forward from `roots` (fn id, root label).
    pub fn forward(graph: &CallGraph, roots: &[(usize, String)]) -> Reach {
        let n = graph.symbols.fns.len();
        let mut via: Vec<Option<Via>> = vec![None; n];
        let mut queue = VecDeque::new();
        for (id, label) in roots {
            if via[*id].is_none() {
                via[*id] = Some(Via::Root(label.clone()));
                queue.push_back(*id);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &(g, site) in &graph.callees[f] {
                if via[g].is_none() {
                    via[g] = Some(Via::Call {
                        parent: f,
                        line: graph.sites[site].line,
                    });
                    queue.push_back(g);
                }
            }
        }
        Reach { via }
    }

    /// Whether fn `f` is reachable.
    pub fn reaches(&self, f: usize) -> bool {
        self.via[f].is_some()
    }

    /// Renders `root → … → fns[f]` as a human-readable trace. Each hop
    /// shows the *call site* (file:line in the caller) that introduced it.
    pub fn trace(&self, graph: &CallGraph, files: &[SourceFile], f: usize) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = f;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 256 {
                hops.push("…".to_string());
                break;
            }
            match &self.via[cur] {
                None => break,
                Some(Via::Root(label)) => {
                    hops.push(format!("[root {label}]"));
                    break;
                }
                Some(Via::Call { parent, line }) => {
                    let info = &graph.symbols.fns[cur];
                    let pfile = &files[graph.symbols.fns[*parent].file].path;
                    hops.push(format!("{} ({pfile}:{line})", info.qual(files)));
                    cur = *parent;
                }
            }
        }
        hops.reverse();
        hops.join(" -> ")
    }
}

/// Reverse reachability: which functions can *reach* one of `targets`.
/// `next[f]` holds `(callee, line-of-call-in-f)` — the first hop of a path
/// from `f` to a target — so traces can be printed forward.
#[derive(Debug)]
pub struct ReverseReach {
    /// `next[f]` is `Some` iff fn `f` reaches a target. Targets map to
    /// themselves with line 0.
    pub next: Vec<Option<(usize, u32)>>,
}

impl ReverseReach {
    /// BFS backward from `targets`.
    pub fn backward(graph: &CallGraph, targets: &[usize]) -> ReverseReach {
        let n = graph.symbols.fns.len();
        let mut next: Vec<Option<(usize, u32)>> = vec![None; n];
        let mut queue = VecDeque::new();
        for &t in targets {
            if next[t].is_none() {
                next[t] = Some((t, 0));
                queue.push_back(t);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &(caller, site) in &graph.callers[f] {
                if next[caller].is_none() {
                    next[caller] = Some((f, graph.sites[site].line));
                    queue.push_back(caller);
                }
            }
        }
        ReverseReach { next }
    }

    /// Whether fn `f` reaches a target.
    pub fn reaches(&self, f: usize) -> bool {
        self.next[f].is_some()
    }

    /// Renders `fns[f] → … → target` forward.
    pub fn trace(&self, graph: &CallGraph, files: &[SourceFile], f: usize) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = f;
        let mut guard = 0usize;
        loop {
            guard += 1;
            if guard > 256 {
                hops.push("…".to_string());
                break;
            }
            let info = &graph.symbols.fns[cur];
            match self.next[cur] {
                None => break,
                Some((n, _)) if n == cur => {
                    hops.push(info.qual(files));
                    break;
                }
                Some((n, line)) => {
                    let file = &files[info.file].path;
                    hops.push(format!("{} ({file}:{line})", info.qual(files)));
                    cur = n;
                }
            }
        }
        hops.join(" -> ")
    }
}

/// Resolves a root spec `(crate, fn-name-prefix-or-exact, self_type)` into
/// fn ids with labels. `name` ending in `*` matches by prefix. `hot_everywhere`
/// drops the crate filter (single-file fixtures have crate "probdb").
pub fn find_roots(
    graph: &CallGraph,
    files: &[SourceFile],
    specs: &[(&str, &str, Option<&str>)],
    everywhere: bool,
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (id, f) in graph.symbols.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        for (krate, name, self_ty) in specs {
            let crate_ok = everywhere || files[f.file].crate_name == *krate;
            if !crate_ok {
                continue;
            }
            let name_ok = match name.strip_suffix('*') {
                Some(prefix) => f.name.starts_with(prefix),
                None => f.name == *name,
            };
            if !name_ok {
                continue;
            }
            if let Some(ty) = self_ty {
                if f.self_type.as_deref() != Some(*ty) {
                    continue;
                }
            }
            out.push((id, f.qual(files)));
            break;
        }
    }
    out
}

/// Workspace fn ids whose name matches one of `names` in crate `krate`
/// (crate filter dropped when `everywhere`).
pub fn fns_named(
    graph: &CallGraph,
    files: &[SourceFile],
    krate: &str,
    names: &[&str],
    everywhere: bool,
) -> Vec<usize> {
    graph
        .symbols
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test
                && names.contains(&f.name.as_str())
                && (everywhere || files[f.file].crate_name == krate)
        })
        .map(|(id, _)| id)
        .collect()
}

/// All call sites in fn `caller` that resolved to workspace fn ids
/// accepted by `pred`, as `(site index, callee id)`.
pub fn calls_from(
    graph: &CallGraph,
    caller: usize,
    pred: impl Fn(usize) -> bool,
) -> Vec<(usize, usize)> {
    graph.callees[caller]
        .iter()
        .filter(|&&(g, _)| pred(g))
        .map(|&(g, site)| (site, g))
        .collect()
}

/// Convenience: the workspace fn a site resolved to, if any.
pub fn workspace_target(graph: &CallGraph, site: usize) -> Option<usize> {
    match graph.sites[site].resolution {
        Resolution::Workspace(id) => Some(id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build;

    fn setup(src: &str) -> (Vec<SourceFile>, CallGraph) {
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", src)];
        let g = build(&files);
        (files, g)
    }

    fn id_of(g: &CallGraph, name: &str) -> usize {
        g.symbols
            .fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn forward_reach_and_trace() {
        let (files, g) =
            setup("fn leaf() {}\nfn mid() { leaf(); }\nfn root() { mid(); }\nfn other() {}\n");
        let roots = vec![(id_of(&g, "root"), "root".to_string())];
        let r = Reach::forward(&g, &roots);
        assert!(r.reaches(id_of(&g, "leaf")));
        assert!(!r.reaches(id_of(&g, "other")));
        let trace = r.trace(&g, &files, id_of(&g, "leaf"));
        assert!(trace.contains("[root root]"), "{trace}");
        assert!(trace.contains("mid"), "{trace}");
        assert!(trace.contains("leaf"), "{trace}");
    }

    #[test]
    fn reverse_reach_finds_callers() {
        let (files, g) =
            setup("fn sink() {}\nfn a() { sink(); }\nfn b() { a(); }\nfn unrelated() {}\n");
        let rr = ReverseReach::backward(&g, &[id_of(&g, "sink")]);
        assert!(rr.reaches(id_of(&g, "b")));
        assert!(!rr.reaches(id_of(&g, "unrelated")));
        let trace = rr.trace(&g, &files, id_of(&g, "b"));
        assert!(trace.contains("b"), "{trace}");
        assert!(trace.contains("sink"), "{trace}");
    }

    #[test]
    fn cycles_terminate() {
        let (_files, g) = setup("fn ping() { pong(); }\nfn pong() { ping(); }\n");
        let roots = vec![(id_of(&g, "ping"), "ping".to_string())];
        let r = Reach::forward(&g, &roots);
        assert!(r.reaches(id_of(&g, "pong")));
    }

    #[test]
    fn root_specs_match_prefix_and_type() {
        let src = "pub struct FlatProgram;\n\
                   impl FlatProgram { pub fn eval(&self) {} pub fn eval_batch(&self) {} }\n\
                   pub fn eval_free() {}\n";
        let files = vec![SourceFile::parse("crates/kernel/src/lib.rs", src)];
        let g = build(&files);
        let roots = find_roots(
            &g,
            &files,
            &[("kernel", "eval*", Some("FlatProgram"))],
            false,
        );
        assert_eq!(roots.len(), 2, "{roots:?}");
        let none = find_roots(&g, &files, &[("wmc", "eval*", None)], false);
        assert!(none.is_empty());
        let all = find_roots(&g, &files, &[("wmc", "eval*", None)], true);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn test_fns_are_never_roots() {
        let src = "#[cfg(test)]\nmod tests {\n    fn eval_helper() {}\n}\npub fn eval() {}\n";
        let files = vec![SourceFile::parse("crates/kernel/src/lib.rs", src)];
        let g = build(&files);
        let roots = find_roots(&g, &files, &[("kernel", "eval*", None)], false);
        assert_eq!(roots.len(), 1, "{roots:?}");
    }
}
