//! A lightweight structural model over the token stream: function extents,
//! `#[cfg(test)]` / `#[test]` regions, and the per-file facts the lints
//! share (crate name, repo-relative path).

use crate::lexer::{lex, Lexed, TokKind, Token};

/// One `fn` item found in the token stream.
#[derive(Clone, Debug)]
pub struct Func {
    /// The function's name.
    pub name: String,
    /// Token range `(open, close)` of the body braces, when it has a body.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function lives inside a test region.
    pub in_test: bool,
}

/// A lexed file plus the structure the lints need.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// The crate the file belongs to (`pdb-server`, `probdb`, …).
    pub crate_name: String,
    /// The token stream.
    pub lexed: Lexed,
    /// Every function item, in source order.
    pub functions: Vec<Func>,
    /// Token index ranges (inclusive) that are test-only code.
    pub test_ranges: Vec<(usize, usize)>,
}

/// Keywords that can directly precede `[` without forming an index
/// expression (so `&mut [T]`, `in [a, b]`, … are not flagged as indexing).
pub const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "impl", "ref", "in", "as", "return", "break", "else", "match", "if", "while",
    "loop", "move", "const", "static", "let", "fn", "where", "for", "type", "pub", "crate",
    "super", "use", "mod", "enum", "struct", "trait", "unsafe", "extern", "box", "await",
];

impl SourceFile {
    /// Lexes and models `source`. `path` should be repo-relative.
    pub fn parse(path: &str, source: &str) -> SourceFile {
        let path = path.replace('\\', "/");
        let crate_name = crate_of(&path);
        let lexed = lex(source);
        let test_ranges = find_test_ranges(&lexed);
        let functions = find_functions(&lexed, &test_ranges);
        SourceFile {
            path,
            crate_name,
            lexed,
            functions,
            test_ranges,
        }
    }

    /// True when token `i` falls inside a test region.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// The tokens, for concision at call sites.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// Derives the crate name from a repo-relative path.
fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    if let Some(pos) = parts.iter().position(|p| *p == "crates") {
        if let Some(name) = parts.get(pos + 1) {
            return (*name).to_string();
        }
    }
    String::from("probdb")
}

/// Finds `#[cfg(test)]` and `#[test]` item bodies: the attribute, then the
/// next `{ … }` at the same nesting level before a `;`.
fn find_test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let close = match lexed.match_of(i + 1) {
                Some(c) => c,
                None => {
                    i += 1;
                    continue;
                }
            };
            let attr: Vec<&str> = toks[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            let is_test_attr = attr == ["test"]
                || (attr.contains(&"cfg") && attr.contains(&"test"))
                || attr == ["bench"];
            if is_test_attr {
                // Skip any further attributes, then find the item body.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                    match lexed.match_of(j + 1) {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                // Scan to the first `{` before a top-level `;`.
                let mut k = j;
                let mut body = None;
                while k < toks.len() {
                    if toks[k].is_punct("{") {
                        body = lexed.match_of(k).map(|c| (k, c));
                        break;
                    }
                    if toks[k].is_punct(";") {
                        break;
                    }
                    // Skip delimited groups in the signature.
                    if toks[k].is_punct("(") || toks[k].is_punct("[") {
                        if let Some(c) = lexed.match_of(k) {
                            k = c;
                        }
                    }
                    k += 1;
                }
                if let Some((open, closeb)) = body {
                    out.push((open, closeb));
                    i = closeb + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Finds every `fn` item and its body extent.
fn find_functions(lexed: &Lexed, test_ranges: &[(usize, usize)]) -> Vec<Func> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            // The name is the next identifier (skip nothing else: `fn` in
            // `dyn Fn(...)` lexes as `Fn`, so a bare `fn` here is an item
            // or a closure-typed parameter `fn(...)`, which has no name).
            let name_tok = toks.get(i + 1);
            let name = match name_tok {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Scan forward for the body `{` or a trailing `;` (trait
            // method without a default body). Skip delimited groups so
            // braces inside parameter defaults or const generics do not
            // end the signature early.
            let mut k = i + 2;
            let mut body = None;
            while k < toks.len() {
                if toks[k].is_punct("{") {
                    body = lexed.match_of(k).map(|c| (k, c));
                    break;
                }
                if toks[k].is_punct(";") {
                    break;
                }
                if toks[k].is_punct("(") || toks[k].is_punct("[") {
                    if let Some(c) = lexed.match_of(k) {
                        k = c;
                    }
                }
                k += 1;
            }
            let in_test = test_ranges.iter().any(|&(a, b)| i >= a && i <= b);
            out.push(Func {
                name,
                body,
                line: toks[i].line,
                in_test,
            });
            // Continue scanning *inside* the body too: nested fns are rare
            // but exist (helpers inside tests), and lints want them.
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Walks backwards from the token before a `.method(` chain and returns the
/// receiver's field path (last identifier is the innermost field). Returns
/// an empty vector when the receiver is not a simple place expression.
///
/// `self.inner.db` → `["inner", "db"]`; `self.queues[q]` → `["queues"]`;
/// `foo()` → `["foo"]`.
pub fn receiver_chain(lexed: &Lexed, mut i: isize) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut rev: Vec<String> = Vec::new();
    while i >= 0 {
        let t = &toks[i as usize];
        if t.kind == TokKind::Ident {
            if t.text != "self" {
                rev.push(t.text.clone());
            }
            // Keep walking only if preceded by `.` or `::`.
            if i >= 1
                && (toks[(i - 1) as usize].is_punct(".") || toks[(i - 1) as usize].is_punct("::"))
            {
                i -= 2;
                continue;
            }
            break;
        }
        if t.is_punct("]") || t.is_punct(")") {
            // Skip the delimited group and continue from what precedes it.
            match lexed.match_of(i as usize) {
                Some(open) => {
                    i = open as isize - 1;
                    continue;
                }
                None => break,
            }
        }
        break;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_functions_and_bodies() {
        let src = "pub fn alpha(x: u32) -> u32 { x }\nfn beta();\nimpl T { fn gamma(&self) { let f = |y| y; } }";
        let sf = SourceFile::parse("crates/demo/src/lib.rs", src);
        let names: Vec<&str> = sf.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert!(sf.functions[0].body.is_some());
        assert!(sf.functions[1].body.is_none());
        assert_eq!(sf.crate_name, "demo");
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() { y.unwrap(); }\n}";
        let sf = SourceFile::parse("crates/demo/src/lib.rs", src);
        assert_eq!(sf.test_ranges.len(), 1, "outer mod swallows the #[test]");
        let live = sf.functions.iter().find(|f| f.name == "live").unwrap();
        let helper = sf.functions.iter().find(|f| f.name == "helper").unwrap();
        assert!(!live.in_test);
        assert!(helper.in_test);
    }

    #[test]
    fn receiver_chains_walk_fields_and_index_groups() {
        let sf = SourceFile::parse(
            "src/lib.rs",
            "self.inner.db.write(); self.queues[q].lock();",
        );
        let toks = sf.tokens();
        let w = toks.iter().position(|t| t.is_ident("write")).unwrap();
        assert_eq!(
            receiver_chain(&sf.lexed, w as isize - 2),
            vec!["inner".to_string(), "db".to_string()]
        );
        let l = toks.iter().position(|t| t.is_ident("lock")).unwrap();
        assert_eq!(
            receiver_chain(&sf.lexed, l as isize - 2),
            vec!["queues".to_string()]
        );
    }
}
