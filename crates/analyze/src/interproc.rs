//! The four interprocedural lints, phrased as reachability queries over the
//! call graph ([`crate::graph`], [`crate::reach`]):
//!
//! - **A1 allocation-in-hot-path** — allocation shapes (`Vec::new`,
//!   `vec!`, `.clone()`, `.collect()`, `format!`, `Box::new`, …) in any
//!   function reachable from the evaluation hot roots: `FlatProgram::eval*`,
//!   the DPLL branch loop, the Karp–Luby inner scans. Ratchets the kernel's
//!   de-allocation work so it cannot silently regress.
//! - **B1 blocking-in-worker** — fsync, untimed `recv`/`wait`, sleeps, and
//!   lock acquisition reachable from pool worker loops, worker closures
//!   (the argument spans of pool-submit calls), or the server request loop;
//!   plus lock guards held across any call that reaches a pool submit.
//! - **F1 float-order** — interprocedural D1: calls inside hash-ordered
//!   iteration or parallel-submit spans that reach floating-point
//!   accumulation. FP addition does not commute with rounding, so operand
//!   order must not depend on hash seeds or thread scheduling.
//! - **W1 durability-before-ack** — every `ProbDb` mutation reachable from
//!   the server protocol handler must pass a WAL append (`log_mutation` /
//!   `append`) in the same function or its direct caller before the reply
//!   is written. This is the replication gapless-handoff contract; it
//!   denies by default and cannot be baselined.
//!
//! A1/B1/F1 are heuristics: real findings are either fixed or carried in
//! the committed baseline file with a written reason (see
//! [`crate::baseline`]). Findings deduplicate on their baseline key
//! (`fn site`), so one baseline line covers every repetition of the same
//! shape in the same function.

use crate::graph::{build, CallGraph, Resolution};
use crate::lexer::TokKind;
use crate::lints::{find_acquisitions, hash_typed_names, Lint, RawFinding};
use crate::model::{receiver_chain, SourceFile};
use crate::reach::{find_roots, fns_named, Reach, ReverseReach, Via};
use std::collections::BTreeSet;

/// Options for the interprocedural pass.
#[derive(Clone, Debug, Default)]
pub struct InterprocOptions {
    /// Drop the crate filters on root specs so single-file fixtures (crate
    /// `probdb`) exercise the lints. The CLI default scopes roots to the
    /// crates that actually own them.
    pub hot_everywhere: bool,
}

fn mk(
    lint: Lint,
    file: usize,
    sf: &SourceFile,
    tok: usize,
    message: String,
    key: Option<String>,
) -> RawFinding {
    let t = &sf.tokens()[tok];
    RawFinding {
        lint,
        file,
        line: t.line,
        col: t.col,
        message,
        key,
    }
}

// ---------------------------------------------------------------------------
// A1 — allocation in hot path
// ---------------------------------------------------------------------------

/// Hot roots: the kernel evaluators, the DPLL solver loop, the Karp–Luby
/// inner scans. `(crate, name-or-prefix*, self type)`.
const A1_ROOTS: &[(&str, &str, Option<&str>)] = &[
    ("kernel", "eval*", None),
    ("kernel", "force_true", None),
    ("kernel", "first_satisfied", None),
    ("wmc", "solve", None),
    ("wmc", "par_solve", None),
    ("wmc", "sample_hits", None),
];

const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "Arc", "Rc", "VecDeque"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// Allocation shapes in `lo..=hi` of one file, as `(token, description)`.
/// Deliberately excludes `.push`/`.extend`/`.reserve` (amortized into an
/// existing buffer — exactly the pattern the hot paths should use).
fn alloc_sites(sf: &SourceFile, lo: usize, hi: usize) -> Vec<(usize, String)> {
    let toks = sf.tokens();
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in lo..=hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident || sf.in_test(i) {
            continue;
        }
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            out.push((i, format!("{}!", t.text)));
            continue;
        }
        // `Vec::new(…)` / `String::with_capacity(…)` / `Box::from(…)`.
        if ALLOC_CTORS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i >= 2
            && toks[i - 1].is_punct("::")
            && ALLOC_TYPES.contains(&toks[i - 2].text.as_str())
        {
            out.push((i, format!("{}::{}", toks[i - 2].text, t.text)));
            continue;
        }
        // `.clone()` / `.collect::<…>()` / `.to_vec()` / ….
        if ALLOC_METHODS.contains(&t.text.as_str()) && i >= 1 && toks[i - 1].is_punct(".") {
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                || (toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct("<")));
            if called {
                let recv = receiver_chain(&sf.lexed, i as isize - 2);
                let r = recv.last().map(String::as_str).unwrap_or("_");
                out.push((i, format!("{r}.{}()", t.text)));
            }
        }
    }
    out
}

fn lint_a1(
    files: &[SourceFile],
    graph: &CallGraph,
    opts: &InterprocOptions,
    out: &mut Vec<RawFinding>,
) {
    let roots = find_roots(graph, files, A1_ROOTS, opts.hot_everywhere);
    if roots.is_empty() {
        return;
    }
    let reach = Reach::forward(graph, &roots);
    for (id, f) in graph.symbols.fns.iter().enumerate() {
        if !reach.reaches(id) || f.in_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let sf = &files[f.file];
        for (tok, desc) in alloc_sites(sf, lo, hi) {
            let trace = reach.trace(graph, files, id);
            out.push(mk(
                Lint::A1,
                f.file,
                sf,
                tok,
                format!(
                    "`{desc}` allocates inside `fn {}`, reachable from a hot root: {trace} — \
                     hoist the allocation to setup or reuse a scratch buffer",
                    f.name
                ),
                Some(format!("{} {desc}", f.name)),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// B1 — blocking in worker
// ---------------------------------------------------------------------------

/// Entry points of the workers: the pool's own loop and the server's
/// per-connection request loop.
const B1_ROOTS: &[(&str, &str, Option<&str>)] = &[
    ("par", "worker_loop", None),
    ("server", "worker_loop", None),
    ("server", "handle_connection", None),
];

/// Pool methods whose closure arguments run on worker threads. Their
/// argument spans are worker regions; workspace calls inside become
/// reachability roots.
const SUBMITS: &[&str] = &[
    "spawn",
    "spawn_detached",
    "parallel_map",
    "map_indices",
    "scope",
    "join",
    "execute",
];

/// Blocking shapes in `lo..=hi`: fsync, sleeps, untimed channel/condvar
/// waits, and zero-argument guard acquisitions. `.wait(` descends instead
/// of firing when it resolved to a workspace function (`Pool::wait` helps
/// while waiting; its body is analyzed on its own).
fn blocking_sites(
    sf: &SourceFile,
    fi: usize,
    lo: usize,
    hi: usize,
    graph: &CallGraph,
) -> Vec<(usize, String)> {
    let toks = sf.tokens();
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in lo..=hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || sf.in_test(i)
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        let method = i >= 1 && toks[i - 1].is_punct(".");
        let close = sf.lexed.match_of(i + 1);
        let zero_arg = close == Some(i + 2);
        match t.text.as_str() {
            "sync_all" | "sync_data" => out.push((i, format!("{}()", t.text))),
            "sleep" => out.push((i, "sleep()".to_string())),
            "recv" if method && zero_arg => out.push((i, "recv() [untimed]".to_string())),
            "wait" if method => {
                let workspace = graph
                    .site_at(fi, i)
                    .is_some_and(|s| matches!(s.resolution, Resolution::Workspace(_)));
                if !workspace {
                    let recv = receiver_chain(&sf.lexed, i as isize - 2);
                    let r = recv.last().map(String::as_str).unwrap_or("_");
                    out.push((i, format!("{r}.wait()")));
                }
            }
            "lock" | "read" | "write" if method && zero_arg => {
                let recv = receiver_chain(&sf.lexed, i as isize - 2);
                let r = recv.last().map(String::as_str).unwrap_or("_");
                out.push((i, format!("{r}.{}()", t.text)));
            }
            _ => {}
        }
    }
    out
}

fn lint_b1(
    files: &[SourceFile],
    graph: &CallGraph,
    opts: &InterprocOptions,
    out: &mut Vec<RawFinding>,
) {
    let submit_ids: BTreeSet<usize> = fns_named(graph, files, "par", SUBMITS, opts.hot_everywhere)
        .into_iter()
        .collect();

    // Worker regions: argument spans of calls that resolve to pool submits.
    let mut spans: Vec<(usize, usize, usize, u32)> = Vec::new();
    for s in &graph.sites {
        let Resolution::Workspace(t) = s.resolution else {
            continue;
        };
        if !submit_ids.contains(&t) {
            continue;
        }
        let sf = &files[s.file];
        if sf.in_test(s.tok) {
            continue;
        }
        let toks = sf.tokens();
        let mut open = s.tok + 1;
        while open < toks.len() && open < s.tok + 64 && !toks[open].is_punct("(") {
            open += 1;
        }
        if toks.get(open).is_some_and(|t| t.is_punct("(")) {
            if let Some(close) = sf.lexed.match_of(open) {
                spans.push((s.file, open, close, s.line));
            }
        }
    }

    // Roots: the loops, plus every workspace call made inside a worker span.
    let mut roots = find_roots(graph, files, B1_ROOTS, opts.hot_everywhere);
    for &(fi, lo, hi, line) in &spans {
        let label = format!("closure@{}:{line}", files[fi].path);
        for site in graph.sites_in(fi, lo, hi) {
            if let Resolution::Workspace(t) = site.resolution {
                if !submit_ids.contains(&t) {
                    roots.push((t, label.clone()));
                }
            }
        }
    }

    if !roots.is_empty() {
        let reach = Reach::forward(graph, &roots);
        for (id, f) in graph.symbols.fns.iter().enumerate() {
            if !reach.reaches(id) || f.in_test {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            let sf = &files[f.file];
            for (tok, desc) in blocking_sites(sf, f.file, lo, hi, graph) {
                let trace = reach.trace(graph, files, id);
                out.push(mk(
                    Lint::B1,
                    f.file,
                    sf,
                    tok,
                    format!(
                        "`{desc}` blocks inside `fn {}`, reachable from a worker: {trace} — \
                         a blocked worker idles a pool lane; move the wait off the pool or \
                         bound it",
                        f.name
                    ),
                    Some(format!("{} {desc}", f.name)),
                ));
            }
        }
    }

    // Blocking shapes written directly inside a worker closure.
    for &(fi, lo, hi, line) in &spans {
        let sf = &files[fi];
        for (tok, desc) in blocking_sites(sf, fi, lo, hi, graph) {
            let func = graph
                .symbols
                .fns
                .iter()
                .find(|f| f.file == fi && matches!(f.body, Some((a, b)) if tok > a && tok < b))
                .map_or("?", |f| f.name.as_str());
            out.push(mk(
                Lint::B1,
                fi,
                sf,
                tok,
                format!(
                    "`{desc}` blocks inside a worker closure submitted at {}:{line} — worker \
                     closures must stay compute-only",
                    sf.path
                ),
                Some(format!("{func} {desc}")),
            ));
        }
    }

    // Guards held across calls that reach a pool submit: the helping /
    // queue-handoff machinery may run arbitrary jobs before returning, so
    // any lock held here is held for an unbounded time (and deadlocks if a
    // job re-acquires it).
    if submit_ids.is_empty() {
        return;
    }
    let targets: Vec<usize> = submit_ids.iter().copied().collect();
    let rr = ReverseReach::backward(graph, &targets);
    for (fi, sf) in files.iter().enumerate() {
        for acq in find_acquisitions(sf, fi) {
            for site in graph.sites_in(fi, acq.site, acq.end + 1) {
                let Resolution::Workspace(t) = site.resolution else {
                    continue;
                };
                if !rr.reaches(t) {
                    continue;
                }
                let callee = &graph.symbols.fns[t];
                out.push(mk(
                    Lint::B1,
                    fi,
                    sf,
                    site.tok,
                    format!(
                        "guard on `{}` (line {}) is held across `{}`, which submits work to \
                         the pool: {} — compile or submit outside the lock, or the pool \
                         serializes on (and can deadlock against) this guard",
                        acq.lock,
                        sf.tokens()[acq.site].line,
                        callee.name,
                        rr.trace(graph, files, t)
                    ),
                    Some(format!(
                        "{} guard-{}-across-{}",
                        acq.func, acq.lock, callee.name
                    )),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// F1 — float order
// ---------------------------------------------------------------------------

/// Functions whose bodies accumulate floating point: compound assignment or
/// `.sum()`/`.fold()`/`.product()` with `f64`/`f32` evidence in scope.
fn float_accumulators(files: &[SourceFile], graph: &CallGraph) -> Vec<usize> {
    let mut out = Vec::new();
    for (id, f) in graph.symbols.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let sf = &files[f.file];
        let toks = sf.tokens();
        let hi = hi.min(toks.len() - 1);
        let body = &toks[lo..=hi];
        // Float evidence includes the signature: `fn add(acc: &mut f64, …)`
        // accumulating via `*acc += p` has no type token inside the braces.
        let sig_and_body = &toks[f.fn_tok..=hi];
        let float_evidence = sig_and_body.iter().any(|t| {
            t.is_ident("f64")
                || t.is_ident("f32")
                || (t.kind == TokKind::Lit
                    && t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32")))
        });
        if !float_evidence {
            continue;
        }
        let accumulates = body.iter().enumerate().any(|(i, t)| {
            (t.kind == TokKind::Punct && matches!(t.text.as_str(), "+=" | "-=" | "*=" | "/="))
                || (t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "sum" | "product" | "fold")
                    && i > 0
                    && body[i - 1].is_punct("."))
        });
        if accumulates {
            out.push(id);
        }
    }
    out
}

/// End of the statement containing token `i`: the next `;` at the same
/// brace depth, bounded by the enclosing block.
fn stmt_end(sf: &SourceFile, i: usize) -> usize {
    let toks = sf.tokens();
    let mut depth = 0i32;
    let mut j = i;
    while j + 1 < toks.len() {
        j += 1;
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
    }
    toks.len() - 1
}

fn lint_f1(
    files: &[SourceFile],
    graph: &CallGraph,
    opts: &InterprocOptions,
    out: &mut Vec<RawFinding>,
) {
    let accs = float_accumulators(files, graph);
    if accs.is_empty() {
        return;
    }
    let rr = ReverseReach::backward(graph, &accs);
    let submit_ids: BTreeSet<usize> = fns_named(
        graph,
        files,
        "par",
        &["parallel_map", "map_indices", "join", "scope"],
        opts.hot_everywhere,
    )
    .into_iter()
    .collect();

    // Unordered regions per file: hash-iterated loop bodies / statements,
    // and parallel-submit argument spans.
    for (fi, sf) in files.iter().enumerate() {
        let toks = sf.tokens();
        let hash_names = hash_typed_names(sf);
        let mut regions: Vec<(usize, usize, String)> = Vec::new();

        if !hash_names.is_empty() {
            for (i, t) in toks.iter().enumerate() {
                if sf.in_test(i) {
                    continue;
                }
                // `<hash>.<iter-method>(…)…;` — the rest of the statement.
                if t.kind == TokKind::Ident
                    && matches!(
                        t.text.as_str(),
                        "iter"
                            | "iter_mut"
                            | "into_iter"
                            | "keys"
                            | "values"
                            | "values_mut"
                            | "drain"
                    )
                    && i >= 2
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    let chain = receiver_chain(&sf.lexed, i as isize - 2);
                    if let Some(name) = chain.last() {
                        if hash_names.contains(name) {
                            regions.push((
                                i,
                                stmt_end(sf, i),
                                format!("hash-ordered iteration over `{name}`"),
                            ));
                        }
                    }
                }
                // `for … in <hash> { … }`.
                if t.is_ident("for") {
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is_ident("in") && !toks[j].is_punct("{") {
                        j += 1;
                    }
                    if !toks.get(j).is_some_and(|t| t.is_ident("in")) {
                        continue;
                    }
                    let mut k = j + 1;
                    while k < toks.len() && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
                        k += 1;
                    }
                    if toks
                        .get(k)
                        .is_some_and(|t| t.kind == TokKind::Ident && hash_names.contains(&t.text))
                        && toks.get(k + 1).is_some_and(|n| n.is_punct("{"))
                    {
                        if let Some(close) = sf.lexed.match_of(k + 1) {
                            regions.push((
                                k + 1,
                                close,
                                format!("hash-ordered loop over `{}`", toks[k].text),
                            ));
                        }
                    }
                }
            }
        }
        for s in &graph.sites {
            if s.file != fi || sf.in_test(s.tok) {
                continue;
            }
            let Resolution::Workspace(t) = s.resolution else {
                continue;
            };
            if !submit_ids.contains(&t) {
                continue;
            }
            let mut open = s.tok + 1;
            while open < toks.len() && open < s.tok + 64 && !toks[open].is_punct("(") {
                open += 1;
            }
            if toks.get(open).is_some_and(|t| t.is_punct("(")) {
                if let Some(close) = sf.lexed.match_of(open) {
                    regions.push((
                        open,
                        close,
                        format!("the parallel `{}` span at line {}", s.name, s.line),
                    ));
                }
            }
        }

        for (lo, hi, cause) in regions {
            for site in graph.sites_in(fi, lo, hi) {
                if sf.in_test(site.tok) {
                    continue;
                }
                let Resolution::Workspace(t) = site.resolution else {
                    continue;
                };
                if submit_ids.contains(&t) || !rr.reaches(t) {
                    continue;
                }
                let callee = &graph.symbols.fns[t];
                let func = site
                    .caller
                    .map_or("?", |c| graph.symbols.fns[c].name.as_str());
                out.push(mk(
                    Lint::F1,
                    fi,
                    sf,
                    site.tok,
                    format!(
                        "call to `{}` inside {cause} reaches floating-point accumulation: {} \
                         — FP addition does not commute with rounding, so operand order must \
                         not depend on hash seeds or scheduling; iterate sorted or combine \
                         in index order",
                        callee.name,
                        rr.trace(graph, files, t)
                    ),
                    Some(format!("{func} {}", callee.name)),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// W1 — durability before ack
// ---------------------------------------------------------------------------

/// Protocol entry points whose replies acknowledge mutations.
const W1_ROOTS: &[(&str, &str, Option<&str>)] = &[
    ("server", "handle_command", None),
    ("server", "handle_line", None),
];

/// `ProbDb` mutation shapes in `lo..=hi`: `.update_prob(` /
/// `.extend_domain(`, and `.insert(` whose nearby receiver context names
/// the database (`db` / `make_mut`).
/// Whether the receiver two tokens before a `.method(` call is a local
/// bound by `let [mut] recv = …` earlier in the same body. Mutating a
/// locally-owned value (e.g. building a complemented copy of the database)
/// is not a durability event — only mutations of the served state are.
fn receiver_is_local(sf: &SourceFile, lo: usize, site: usize) -> bool {
    let toks = sf.tokens();
    if site < 2 || toks[site - 2].kind != TokKind::Ident {
        return false;
    }
    let recv = toks[site - 2].text.as_str();
    (lo..site.saturating_sub(2)).any(|k| {
        if !toks[k].is_ident(recv) || !toks.get(k + 1).is_some_and(|n| n.is_punct("=")) {
            return false;
        }
        let mut b = k;
        while b >= 1 && toks[b - 1].is_ident("mut") {
            b -= 1;
        }
        b >= 1 && toks[b - 1].is_ident("let")
    })
}

fn mutation_sites(sf: &SourceFile, lo: usize, hi: usize) -> Vec<(usize, String)> {
    let toks = sf.tokens();
    let hi = hi.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in lo..=hi {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || sf.in_test(i)
            || i == 0
            || !toks[i - 1].is_punct(".")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            || receiver_is_local(sf, lo, i)
        {
            continue;
        }
        match t.text.as_str() {
            "update_prob" | "extend_domain" => out.push((i, t.text.clone())),
            "insert" => {
                let from = i.saturating_sub(8);
                let db_context = toks[from..i]
                    .iter()
                    .any(|t| t.is_ident("db") || t.is_ident("make_mut"));
                if db_context {
                    out.push((i, "insert".to_string()));
                }
            }
            _ => {}
        }
    }
    out
}

/// Whether a WAL append happens after token `from` (exclusive) and before
/// `to` (inclusive): an ident `log_mutation` or `append` called there.
fn wal_pass(sf: &SourceFile, from: usize, to: usize) -> bool {
    let toks = sf.tokens();
    let to = to.min(toks.len().saturating_sub(1));
    (from + 1..=to).any(|i| {
        (toks[i].is_ident("log_mutation") || toks[i].is_ident("append"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
    })
}

fn lint_w1(
    files: &[SourceFile],
    graph: &CallGraph,
    opts: &InterprocOptions,
    out: &mut Vec<RawFinding>,
) {
    let roots = find_roots(graph, files, W1_ROOTS, opts.hot_everywhere);
    if roots.is_empty() {
        return;
    }
    let reach = Reach::forward(graph, &roots);
    for (id, f) in graph.symbols.fns.iter().enumerate() {
        if !reach.reaches(id) || f.in_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let sf = &files[f.file];
        for (tok, desc) in mutation_sites(sf, lo, hi) {
            let mut passed = wal_pass(sf, tok, hi);
            if !passed {
                // One caller up along the reachability path: wrapper
                // mutators whose caller logs on their behalf.
                if let Some(Via::Call { parent, .. }) = &reach.via[id] {
                    let pf = &graph.symbols.fns[*parent];
                    if let Some((plo, phi)) = pf.body {
                        passed = wal_pass(&files[pf.file], plo, phi);
                    }
                }
            }
            if !passed {
                out.push(mk(
                    Lint::W1,
                    f.file,
                    sf,
                    tok,
                    format!(
                        "mutation `{desc}` in `fn {}` is reachable from the protocol handler \
                         ({}) but no WAL append (`log_mutation`/`append`) follows before the \
                         reply — an acked mutation that missed the WAL is lost on crash and \
                         never ships to replicas",
                        f.name,
                        reach.trace(graph, files, id)
                    ),
                    Some(format!("{} {desc}", f.name)),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs the interprocedural lints. Returns the findings (deduplicated on
/// their baseline key per file) and the call-graph statistics.
pub fn run_interproc(
    files: &[SourceFile],
    opts: &InterprocOptions,
) -> (Vec<RawFinding>, crate::graph::GraphStats) {
    let graph = build(files);
    let mut raw = Vec::new();
    lint_a1(files, &graph, opts, &mut raw);
    lint_b1(files, &graph, opts, &mut raw);
    lint_f1(files, &graph, opts, &mut raw);
    lint_w1(files, &graph, opts, &mut raw);

    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut out = Vec::new();
    for r in raw {
        let dedup = match &r.key {
            Some(k) => seen.insert((r.lint.code().to_string(), r.file, k.clone())),
            None => true,
        };
        if dedup {
            out.push(r);
        }
    }
    (out, graph.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<RawFinding> {
        let files = vec![SourceFile::parse("crates/demo/src/lib.rs", src)];
        let opts = InterprocOptions {
            hot_everywhere: true,
        };
        run_interproc(&files, &opts).0
    }

    fn codes(fs: &[RawFinding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.lint.code()).collect()
    }

    #[test]
    fn a1_flags_reachable_allocation_with_trace() {
        let fs = run("pub fn eval(x: &[f64]) -> f64 { helper(x) }\n\
             fn helper(x: &[f64]) -> f64 { let v: Vec<f64> = x.to_vec(); v[0] }\n");
        let a1: Vec<&RawFinding> = fs.iter().filter(|f| f.lint == Lint::A1).collect();
        assert_eq!(a1.len(), 1, "{fs:?}");
        assert!(a1[0].message.contains("[root"), "{}", a1[0].message);
        assert!(a1[0].message.contains("helper"), "{}", a1[0].message);
        assert_eq!(a1[0].key.as_deref(), Some("helper x.to_vec()"));
    }

    #[test]
    fn a1_ignores_unreachable_and_test_allocations() {
        let fs = run("pub fn eval() -> u32 { 1 }\n\
             pub fn cold() { let _v = Vec::<u32>::new(); let _s = vec![1]; }\n\
             #[cfg(test)]\nmod tests { fn t() { let _ = vec![1]; } }\n");
        assert!(codes(&fs).iter().all(|c| *c != "A1"), "{fs:?}");
    }

    #[test]
    fn b1_flags_blocking_reachable_from_worker_loop() {
        let fs = run("pub fn worker_loop() { step(); }\n\
             fn step() { flush(); }\n\
             fn flush() { file.sync_all(); }\n");
        let b1: Vec<&RawFinding> = fs.iter().filter(|f| f.lint == Lint::B1).collect();
        assert_eq!(b1.len(), 1, "{fs:?}");
        assert!(b1[0].message.contains("sync_all"), "{}", b1[0].message);
        assert!(b1[0].message.contains("step"), "{}", b1[0].message);
    }

    #[test]
    fn b1_flags_guard_held_across_pool_submit() {
        let fs = run(
            "pub struct Pool;\nimpl Pool { pub fn parallel_map(&self) {} }\n\
             fn rebuild(pool: &Pool) { pool.parallel_map(); }\n\
             fn top(pool: &Pool, m: M) { let g = m.lock(); rebuild(pool); g.touch(); }\n",
        );
        let guard: Vec<&RawFinding> = fs
            .iter()
            .filter(|f| f.lint == Lint::B1 && f.message.contains("held across"))
            .collect();
        assert_eq!(guard.len(), 1, "{fs:?}");
        assert!(guard[0].message.contains("rebuild"), "{}", guard[0].message);
    }

    #[test]
    fn b1_worker_closure_spans_become_roots() {
        let fs = run(
            "pub struct Pool;\nimpl Pool { pub fn spawn_detached(&self) {} }\n\
             fn kick(pool: &Pool) { pool.spawn_detached(checkpoint()); }\n\
             fn checkpoint() { f.sync_all(); }\n",
        );
        let b1: Vec<&RawFinding> = fs
            .iter()
            .filter(|f| f.lint == Lint::B1 && f.message.contains("sync_all"))
            .collect();
        assert_eq!(b1.len(), 1, "{fs:?}");
        assert!(b1[0].message.contains("closure@"), "{}", b1[0].message);
    }

    #[test]
    fn f1_flags_hash_loop_calling_float_accumulator() {
        let fs = run("fn total(probs: &HashMap<u32, f64>) -> f64 {\n\
                 let mut acc = 0.0f64;\n\
                 for p in probs { add_to(&mut acc, p); }\n\
                 acc\n\
             }\n\
             fn add_to(acc: &mut f64, p: f64) { *acc += p; }\n");
        let f1: Vec<&RawFinding> = fs.iter().filter(|f| f.lint == Lint::F1).collect();
        assert_eq!(f1.len(), 1, "{fs:?}");
        assert!(f1[0].message.contains("add_to"), "{}", f1[0].message);
    }

    #[test]
    fn f1_is_quiet_for_btree_iteration() {
        let fs = run("fn total(probs: &BTreeMap<u32, f64>) -> f64 {\n\
                 let mut acc = 0.0f64;\n\
                 for p in probs { add_to(&mut acc, p); }\n\
                 acc\n\
             }\n\
             fn add_to(acc: &mut f64, p: f64) { *acc += p; }\n");
        assert!(codes(&fs).iter().all(|c| *c != "F1"), "{fs:?}");
    }

    #[test]
    fn w1_requires_wal_append_after_mutation() {
        let bad = run(
            "pub fn handle_command(db: &mut Db) { db.insert(1); reply_ok(); }\n\
             fn reply_ok() {}\n",
        );
        let w1: Vec<&RawFinding> = bad.iter().filter(|f| f.lint == Lint::W1).collect();
        assert_eq!(w1.len(), 1, "{bad:?}");

        let good = run(
            "pub fn handle_command(db: &mut Db) { db.insert(1); log_mutation(op); reply_ok(); }\n\
             fn log_mutation(op: Op) {}\nfn reply_ok() {}\n",
        );
        assert!(good.iter().all(|f| f.lint != Lint::W1), "{good:?}");
    }

    #[test]
    fn w1_accepts_logging_one_caller_up() {
        let fs = run(
            "pub fn handle_command(db: &mut Db) { apply(db); log_mutation(op); }\n\
             fn apply(db: &mut Db) { db.insert(1); }\n\
             fn log_mutation(op: Op) {}\n",
        );
        assert!(fs.iter().all(|f| f.lint != Lint::W1), "{fs:?}");
    }

    #[test]
    fn findings_dedup_on_key() {
        let fs = run("pub fn eval() { helper(); helper2(); }\n\
             fn helper() { let a = x.clone(); let b = x.clone(); }\n\
             fn helper2() {}\n");
        let a1: Vec<&RawFinding> = fs.iter().filter(|f| f.lint == Lint::A1).collect();
        assert_eq!(a1.len(), 1, "one finding per (fn, shape): {fs:?}");
    }
}
