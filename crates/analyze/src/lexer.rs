//! A small, dependency-free Rust lexer.
//!
//! Produces a token stream with line/column spans plus a parallel list of
//! comments, which is exactly what the lints need: identifiers and
//! punctuation to recognise syntactic shapes, comments to check `// SAFETY:`
//! annotations and `// pdb-lint: allow(...)` suppressions, and matched
//! delimiter positions to reason about block extents (guard lifetimes, test
//! modules, function bodies).
//!
//! It is *not* a parser: no precedence, no AST. The lints work on token
//! shapes, which keeps the whole pass trivially fast (one linear scan per
//! file) and robust against half-written code.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unsafe`, `foo`).
    Ident,
    /// Punctuation / operator, possibly multi-character (`::`, `+=`).
    Punct,
    /// A literal: string, raw string, byte string, char, or number.
    Lit,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's class.
    pub kind: TokKind,
    /// The raw text (for literals, the opening characters only are
    /// guaranteed; string contents are preserved but unescaped).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True iff this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block), with its line extent.
#[derive(Clone, Debug)]
pub struct Comment {
    /// The comment text, including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
}

/// A lexed file: tokens, comments, and matched-delimiter tables.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// `matching[i] = j` when tokens `i` and `j` are a matched `{}`/`()`/
    /// `[]` pair (both directions); `usize::MAX` when unmatched.
    pub matching: Vec<usize>,
}

impl Lexed {
    /// The index of the `{`/`(`/`[` or `}`/`)`/`]` matching token `i`, if
    /// the file's delimiters balance there.
    pub fn match_of(&self, i: usize) -> Option<usize> {
        let j = *self.matching.get(i)?;
        (j != usize::MAX).then_some(j)
    }

    /// The most recent comment that *ends* on `line`, if any.
    pub fn comment_ending_on(&self, line: u32) -> Option<&Comment> {
        self.comments.iter().rev().find(|c| c.end_line == line)
    }

    /// All comments that end on lines in `[lo, hi]`.
    pub fn comments_ending_in(&self, lo: u32, hi: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.end_line >= lo && c.end_line <= hi)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens + comments, recording matched delimiters.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    // Stack of (open index, open char) for delimiter matching.
    let mut delims: Vec<(usize, char)> = Vec::new();

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if chars[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    advance!(1);
                }
                out.comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    end_line: tline,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        advance!(2);
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        advance!(2);
                        if depth == 0 {
                            break;
                        }
                    } else {
                        advance!(1);
                    }
                }
                out.comments.push(Comment {
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    end_line: line,
                });
                continue;
            }
        }

        // Raw strings r"..." / r#"..."# (and br variants), checked before
        // identifiers so `r` / `br` prefixes do not lex as idents.
        if (c == 'r' || c == 'b') && i + 1 < chars.len() {
            let (prefix_len, rest) = if c == 'b' && chars[i + 1] == 'r' {
                (2, i + 2)
            } else if c == 'r' {
                (1, i + 1)
            } else {
                (0, i)
            };
            if prefix_len > 0 && rest < chars.len() {
                let mut hashes = 0usize;
                let mut j = rest;
                while j < chars.len() && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < chars.len() && chars[j] == '"' {
                    // Consume until `"` followed by `hashes` hashes.
                    advance!(j + 1 - i);
                    loop {
                        if i >= chars.len() {
                            break;
                        }
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && i + 1 + k < chars.len() && chars[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                advance!(1 + hashes);
                                break;
                            }
                        }
                        advance!(1);
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lit,
                        text: String::from("\"raw\""),
                        line: tline,
                        col: tcol,
                    });
                    out.matching.push(usize::MAX);
                    continue;
                }
            }
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                advance!(1);
            }
            // A byte-string/char prefix directly attached to a quote
            // (`b"…"` / `b'…'`) — fall through to the literal lexers by
            // treating the prefix as consumed.
            let text: String = chars[start..i].iter().collect();
            if text == "b" && i < chars.len() && (chars[i] == '"' || chars[i] == '\'') {
                // Let the quote be handled on the next loop turn; the `b`
                // itself carries no information the lints need.
                continue;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line: tline,
                col: tcol,
            });
            out.matching.push(usize::MAX);
            continue;
        }

        // String literals.
        if c == '"' {
            advance!(1);
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            if i < chars.len() {
                advance!(1); // closing quote
            }
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: String::from("\"str\""),
                line: tline,
                col: tcol,
            });
            out.matching.push(usize::MAX);
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime = match (next, after) {
                (Some(n), Some(a)) => is_ident_start(n) && a != '\'',
                (Some(n), None) => is_ident_start(n),
                _ => false,
            };
            if is_lifetime {
                advance!(1);
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    advance!(1);
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                out.matching.push(usize::MAX);
                continue;
            }
            // Char literal: consume to the closing quote, honouring escapes.
            advance!(1);
            while i < chars.len() && chars[i] != '\'' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            if i < chars.len() {
                advance!(1);
            }
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: String::from("'c'"),
                line: tline,
                col: tcol,
            });
            out.matching.push(usize::MAX);
            continue;
        }

        // Numbers (simple: enough to keep `1.0` one token and `0..n` three).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident_continue(chars[i])) {
                advance!(1);
            }
            // A fractional part: `.` followed by a digit (not `..`).
            if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                advance!(1);
                while i < chars.len() && is_ident_continue(chars[i]) {
                    advance!(1);
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Lit,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            out.matching.push(usize::MAX);
            continue;
        }

        // Multi-char operators (longest match), then single punctuation.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let n = op.len();
            if i + n <= chars.len() && chars[i..i + n].iter().collect::<String>() == **op {
                advance!(n);
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line: tline,
                    col: tcol,
                });
                out.matching.push(usize::MAX);
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        advance!(1);
        let idx = out.tokens.len();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        out.matching.push(usize::MAX);
        match c {
            '{' | '(' | '[' => delims.push((idx, c)),
            '}' | ')' | ']' => {
                let want = match c {
                    '}' => '{',
                    ')' => '(',
                    _ => '[',
                };
                if let Some(&(open, oc)) = delims.last() {
                    if oc == want {
                        delims.pop();
                        out.matching[open] = idx;
                        out.matching[idx] = open;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_matches_braces() {
        let lx = lex("fn foo(a: u32) -> u32 { a + 1 }");
        let idents: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["fn", "foo", "a", "u32", "u32", "a"]);
        let open = lx.tokens.iter().position(|t| t.is_punct("{")).unwrap();
        let close = lx.match_of(open).unwrap();
        assert!(lx.tokens[close].is_punct("}"));
        assert_eq!(lx.match_of(close), Some(open));
    }

    #[test]
    fn comments_do_not_produce_tokens_but_are_recorded() {
        let lx = lex("// SAFETY: fine\nunsafe { x } /* block\ncomment */ y");
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].line, 1);
        assert!(lx.comments[0].text.contains("SAFETY:"));
        assert_eq!(lx.comments[1].line, 2);
        assert_eq!(lx.comments[1].end_line, 3);
        assert!(lx.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(!lx.tokens.iter().any(|t| t.text.contains("SAFETY")));
    }

    #[test]
    fn strings_chars_and_lifetimes_are_opaque() {
        let lx = lex(r#"let s = "unsafe { }"; let c = '{'; fn f<'a>(x: &'a str) {}"#);
        // The string's braces must not confuse matching: the final {} pair
        // still matches.
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unsafe")));
        let lifetimes: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let open = lx.tokens.iter().position(|t| t.is_punct("{")).unwrap();
        assert!(lx.match_of(open).is_some());
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let lx = lex(r###"let x = r#"unsafe // not a comment"#; y"###);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(lx.comments.is_empty());
        assert!(lx.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn multi_char_operators_lex_as_one_token() {
        let lx = lex("a += 1; b :: c; d ..= e; f != g");
        let puncts: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"!="));
    }

    #[test]
    fn raw_string_spans_stay_exact_across_lines() {
        // The raw string spans two lines; every token after it must carry
        // the position it has in the source, not one skewed by the loop
        // that consumes the literal.
        let src = "let s = r#\"line one\nline two\"#; next_ident";
        let lx = lex(src);
        let raw = lx
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Lit)
            .expect("raw literal token");
        assert_eq!((raw.text.as_str(), raw.line, raw.col), ("\"raw\"", 1, 9));
        let semi = lx.tokens.iter().find(|t| t.is_punct(";")).expect("semi");
        assert_eq!((semi.line, semi.col), (2, 11));
        let next = lx
            .tokens
            .iter()
            .find(|t| t.is_ident("next_ident"))
            .expect("trailing ident");
        assert_eq!((next.line, next.col), (2, 13));
    }

    #[test]
    fn nested_block_comment_spans_stay_exact() {
        // A nested `/* /* */ */` must close at the *outer* terminator and
        // leave following tokens with exact positions.
        let src = "x /* one /* two\nthree */ four */ y";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 1);
        assert_eq!(lx.comments[0].end_line, 2);
        assert!(lx.comments[0].text.contains("four"));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("three")));
        let y = lx.tokens.iter().find(|t| t.is_ident("y")).expect("y");
        assert_eq!((y.line, y.col), (2, 18));
    }

    #[test]
    fn byte_string_spans_stay_exact() {
        // `b"…"` lexes as one opaque literal (the `b` prefix is dropped);
        // the escaped quote must not end the literal early, and the raw
        // byte-string form `br#"…"#` must behave like `r#"…"#`.
        let src = "let v = b\"ab\\\"cd\"; tail\nlet w = br#\"x\"#; after";
        let lx = lex(src);
        let lits: Vec<(&str, u32, u32)> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| (t.text.as_str(), t.line, t.col))
            .collect();
        assert_eq!(lits, [("\"str\"", 1, 10), ("\"raw\"", 2, 9)]);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("cd")));
        let tail = lx.tokens.iter().find(|t| t.is_ident("tail")).expect("tail");
        assert_eq!((tail.line, tail.col), (1, 20));
        let after = lx
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after");
        assert_eq!((after.line, after.col), (2, 18));
    }

    #[test]
    fn numbers_keep_fractions_together() {
        let lx = lex("let p = 0.5; for i in 0..10 {}");
        let lits: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, ["0.5", "0", "10"]);
    }
}
