//! Free Binary Decision Diagrams.
//!
//! An FBDD reads each variable at most once per path but, unlike an OBDD,
//! different paths may read variables in different orders. Per
//! Huang–Darwiche (§7): the trace of a DPLL algorithm with caching but
//! *without* components is an FBDD.

use crate::ddnnf::{DdnnfNode, DecisionDnnf};
use pdb_wmc::Trace;
use std::collections::HashMap;

/// An FBDD (decision nodes only; arena-allocated DAG).
#[derive(Clone, Debug)]
pub struct Fbdd {
    inner: DecisionDnnf,
}

impl Fbdd {
    /// Builds from a DPLL trace; fails if the trace contains component
    /// ∧-nodes (run the counter with `components: false`) or violates the
    /// read-once property.
    pub fn from_trace(trace: &Trace) -> Result<Fbdd, String> {
        let inner = DecisionDnnf::from_trace(trace);
        let has_and = inner
            .nodes()
            .iter()
            .any(|n| matches!(n, DdnnfNode::And { .. }));
        if has_and {
            return Err("trace contains ∧-nodes; not an FBDD".to_string());
        }
        inner.validate()?;
        Ok(Fbdd { inner })
    }

    /// Hand-builds an FBDD from raw decision nodes (used by the Fig. 2
    /// reconstruction). Node 0 must be `True`, node 1 `False`.
    pub fn from_nodes(nodes: Vec<DdnnfNode>, root: u32) -> Result<Fbdd, String> {
        let inner = DecisionDnnf::new(nodes, root);
        if inner
            .nodes()
            .iter()
            .any(|n| matches!(n, DdnnfNode::And { .. }))
        {
            return Err("FBDDs cannot contain ∧-nodes".to_string());
        }
        inner.validate()?;
        Ok(Fbdd { inner })
    }

    /// Number of reachable nodes.
    pub fn size(&self) -> usize {
        self.inner.size()
    }

    /// Number of reachable decision nodes.
    pub fn decision_count(&self) -> usize {
        self.inner.decision_count()
    }

    /// Evaluates on an assignment.
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        self.inner.eval(assignment)
    }

    /// Weighted model count.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        self.inner.probability(probs)
    }

    /// Lowers the FBDD into a flat kernel program; bit-identical to
    /// [`Fbdd::probability`] (see [`DecisionDnnf::flatten`]).
    pub fn flatten(&self) -> pdb_kernel::FlatProgram {
        self.inner.flatten()
    }

    /// Whether every path reads the variables in one global order — i.e.
    /// whether this FBDD happens to be an OBDD. (Checks that the order of
    /// first reads is consistent across all root-to-leaf paths, via a
    /// topological "level" assignment.)
    pub fn is_ordered(&self) -> bool {
        // Build the precedence relation var u → var v whenever a decision on
        // u has a child deciding v. The FBDD is an OBDD iff this relation is
        // acyclic (then any topological order works for every path).
        let mut edges: HashMap<u32, Vec<u32>> = HashMap::new();
        for n in self.inner.nodes() {
            if let DdnnfNode::Decision { var, hi, lo } = n {
                for &child in &[*hi, *lo] {
                    if let DdnnfNode::Decision { var: cv, .. } = &self.inner.nodes()[child as usize]
                    {
                        edges.entry(*var).or_default().push(*cv);
                    }
                }
            }
        }
        // Cycle detection (DFS, three colors).
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<u32, Color> = HashMap::new();
        fn dfs(v: u32, edges: &HashMap<u32, Vec<u32>>, color: &mut HashMap<u32, Color>) -> bool {
            match color.get(&v).copied().unwrap_or(Color::White) {
                Color::Gray => return false,
                Color::Black => return true,
                Color::White => {}
            }
            color.insert(v, Color::Gray);
            if let Some(next) = edges.get(&v) {
                for &w in next {
                    if w != v && !dfs(w, edges, color) {
                        return false;
                    }
                }
            }
            color.insert(v, Color::Black);
            true
        }
        let vars: Vec<u32> = edges.keys().copied().collect();
        vars.iter().all(|&v| dfs(v, &edges, &mut color))
    }

    /// Access the underlying decision structure.
    pub fn as_decision_dnnf(&self) -> &DecisionDnnf {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_data::TupleId;
    use pdb_lineage::{BoolExpr, Cnf};
    use pdb_num::assert_close;
    use pdb_wmc::{brute, Dpll, DpllOptions};

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    fn fbdd_of(expr: &BoolExpr, n: u32) -> Fbdd {
        let cnf = Cnf::from_negated_dnf(expr, n);
        let result = Dpll::new(
            &cnf,
            vec![0.5; n as usize],
            DpllOptions {
                components: false,
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        Fbdd::from_trace(&result.trace.unwrap()).expect("component-free trace")
    }

    #[test]
    fn dpll_without_components_yields_fbdd() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let fbdd = fbdd_of(&f, 4);
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(fbdd.eval(&a), !f.eval(&|t| a(t.0)));
        }
    }

    #[test]
    fn dpll_with_components_is_rejected() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let result = Dpll::new(
            &cnf,
            vec![0.5; 4],
            DpllOptions {
                components: true,
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        assert!(Fbdd::from_trace(&result.trace.unwrap()).is_err());
    }

    #[test]
    fn probability_matches_brute_force() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(1), v(2)]),
        ]);
        let probs = [0.3, 0.5, 0.7];
        let cnf = Cnf::from_negated_dnf(&f, 3);
        let result = Dpll::new(
            &cnf,
            probs.to_vec(),
            DpllOptions {
                components: false,
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        let fbdd = Fbdd::from_trace(&result.trace.unwrap()).unwrap();
        let expected = 1.0 - brute::expr_probability(&f, &probs);
        assert_close(fbdd.probability(&probs), expected, 1e-12);
    }

    #[test]
    fn flatten_is_bit_identical_to_tree_walk() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(1), v(2)]),
        ]);
        let fbdd = fbdd_of(&f, 3);
        let flat = fbdd.flatten();
        for probs in [vec![0.5; 3], vec![0.3, 0.5, 0.7]] {
            assert_eq!(
                flat.eval(&probs).to_bits(),
                fbdd.probability(&probs).to_bits()
            );
        }
    }

    #[test]
    fn fixed_order_trace_is_ordered() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(2)]),
            BoolExpr::and_all([v(1), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let result = Dpll::new(
            &cnf,
            vec![0.5; 4],
            DpllOptions {
                components: false,
                var_order: Some(vec![0, 1, 2, 3]),
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        let fbdd = Fbdd::from_trace(&result.trace.unwrap()).unwrap();
        assert!(fbdd.is_ordered(), "fixed-order DPLL trace must be an OBDD");
    }

    #[test]
    fn hand_built_unordered_fbdd() {
        // Root decides x0; hi-branch reads x1 then x2, lo-branch reads x2
        // then x1 — free but not ordered.
        let nodes = vec![
            DdnnfNode::True,  // 0
            DdnnfNode::False, // 1
            DdnnfNode::Decision {
                var: 2,
                hi: 0,
                lo: 1,
            }, // 2: x2?
            DdnnfNode::Decision {
                var: 1,
                hi: 0,
                lo: 1,
            }, // 3: x1?
            DdnnfNode::Decision {
                var: 1,
                hi: 2,
                lo: 1,
            }, // 4: x1 then x2
            DdnnfNode::Decision {
                var: 2,
                hi: 3,
                lo: 1,
            }, // 5: x2 then x1
            DdnnfNode::Decision {
                var: 0,
                hi: 4,
                lo: 5,
            }, // 6: root
        ];
        let fbdd = Fbdd::from_nodes(nodes, 6).unwrap();
        assert!(!fbdd.is_ordered());
        // Still computes x1 & x2 regardless of branch order.
        for mask in 0u32..8 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(fbdd.eval(&a), a(1) && a(2), "mask={mask}");
        }
    }
}
