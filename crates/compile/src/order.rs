//! Variable-order heuristics for OBDD compilation.
//!
//! Theorem 7.1(i-a): hierarchical self-join-free CQ lineages have
//! *linear-size* OBDDs — under the order that groups each root constant's
//! tuples together (all tuples mentioning `a` before all tuples mentioning
//! `b`, …). [`hierarchical_order`] produces that grouping from a database
//! index; [`identity_order`] is the naive baseline.

use pdb_data::TupleIndex;

/// The identity order `0, 1, …, n−1` (tuple ids in index order).
pub fn identity_order(n: u32) -> Vec<u32> {
    (0..n).collect()
}

/// Groups tuple variables by their **first attribute value**, then relation
/// name, then tuple — the "process one root constant at a time" order that
/// realizes linear-size OBDDs for hierarchical queries like
/// `R(x), S(x,y)` (all of `R(a), S(a,·)` contiguous per `a`).
pub fn hierarchical_order(index: &TupleIndex) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..index.len() as u32).collect();
    ids.sort_by_key(|&i| {
        let r = index.get(pdb_data::TupleId(i));
        let first = r.tuple.values().first().copied().unwrap_or(0);
        (first, r.relation.clone(), r.tuple.clone())
    });
    ids
}

/// An adversarial order interleaving relations: all of `R`, then all of `S`,
/// then all of `T`, each sorted by tuple. For `R(x),S(x,y)`-style lineages
/// this separates each root from its children and degrades OBDD sharing;
/// used as the ablation baseline in the E6 experiment.
pub fn relation_major_order(index: &TupleIndex) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..index.len() as u32).collect();
    ids.sort_by_key(|&i| {
        let r = index.get(pdb_data::TupleId(i));
        (r.relation.clone(), r.tuple.clone())
    });
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obdd::Obdd;
    use pdb_data::generators;
    use pdb_lineage::ucq_dnf_lineage;
    use pdb_logic::parse_ucq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_identity() {
        assert_eq!(identity_order(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn hierarchical_order_groups_by_root() {
        let mut rng = StdRng::seed_from_u64(5);
        let db = generators::star(4, 1, 3, 0.5, &mut rng);
        let idx = db.index();
        let order = hierarchical_order(&idx);
        // Walk the order; once we leave a root constant we never return.
        let mut seen_roots = Vec::new();
        for &i in &order {
            let root = idx.get(pdb_data::TupleId(i)).tuple.get(0);
            if seen_roots.last() != Some(&root) {
                assert!(
                    !seen_roots.contains(&root),
                    "root {root} split across the order"
                );
                seen_roots.push(root);
            }
        }
    }

    #[test]
    fn hierarchical_order_beats_relation_major_on_star() {
        // OBDD of the lineage of R(x), S1(x,y) on a star instance: grouped
        // order stays linear, relation-major order grows.
        let mut rng = StdRng::seed_from_u64(5);
        let db = generators::star(6, 1, 2, 0.5, &mut rng);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S1(x,y)").unwrap(), &db, &idx).to_expr();
        let good = Obdd::compile(&lin, &hierarchical_order(&idx));
        let bad = Obdd::compile(&lin, &relation_major_order(&idx));
        assert!(
            good.size() <= bad.size(),
            "grouped {} vs relation-major {}",
            good.size(),
            bad.size()
        );
        // Both compute the same function on a few spot checks.
        for mask in [0u64, 3, 7, 13, (1 << idx.len()) - 1] {
            let a = |v: u32| mask >> v & 1 == 1;
            assert_eq!(good.eval(&a), bad.eval(&a));
        }
    }
}
