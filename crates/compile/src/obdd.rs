//! Reduced Ordered Binary Decision Diagrams.
//!
//! An OBDD reads variables in one global order on every path; reduction
//! (unique table + node elision) makes it canonical for that order. The
//! dichotomy of Theorem 7.1(i) is about OBDD sizes of CQ lineages:
//! hierarchical self-join-free CQs have linear-size OBDDs under the right
//! order; non-hierarchical ones are exponential under *every* order.

use pdb_kernel::{FlatBuilder, FlatProgram};
use pdb_lineage::BoolExpr;
use std::collections::HashMap;

/// Node reference: 0 = false terminal, 1 = true terminal, else internal.
pub type Ref = u32;

const FALSE: Ref = 0;
const TRUE: Ref = 1;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Node {
    /// Position in the variable order (not the variable id).
    level: u32,
    lo: Ref,
    hi: Ref,
}

/// A reduced OBDD manager plus a root, compiled from one formula.
#[derive(Clone, Debug)]
pub struct Obdd {
    nodes: Vec<Node>, // indices 0/1 reserved for terminals (dummy entries)
    unique: HashMap<Node, Ref>,
    /// `order[level]` = variable id read at that level.
    order: Vec<u32>,
    level_of: HashMap<u32, u32>,
    root: Ref,
}

impl Obdd {
    /// Compiles `expr` under the variable `order` (a permutation of a
    /// superset of the formula's variables; variables missing from the order
    /// cause a panic).
    pub fn compile(expr: &BoolExpr, order: &[u32]) -> Obdd {
        let level_of: HashMap<u32, u32> = order
            .iter()
            .enumerate()
            .map(|(l, &v)| (v, l as u32))
            .collect();
        let mut obdd = Obdd {
            nodes: vec![
                Node {
                    level: u32::MAX,
                    lo: FALSE,
                    hi: FALSE,
                },
                Node {
                    level: u32::MAX,
                    lo: TRUE,
                    hi: TRUE,
                },
            ],
            unique: HashMap::new(),
            order: order.to_vec(),
            level_of,
            root: FALSE,
        };
        let mut memo = HashMap::new();
        let nnf = expr.nnf();
        obdd.root = obdd.build(&nnf, &mut memo);
        obdd
    }

    /// The root reference.
    pub fn root(&self) -> Ref {
        self.root
    }

    /// The variable order used.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    fn mk(&mut self, level: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { level, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = self.nodes.len() as Ref;
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn build(&mut self, expr: &BoolExpr, memo: &mut HashMap<BoolExpr, Ref>) -> Ref {
        if let Some(&r) = memo.get(expr) {
            return r;
        }
        let r = match expr {
            BoolExpr::Const(true) => TRUE,
            BoolExpr::Const(false) => FALSE,
            BoolExpr::Var(v) => {
                let level = *self
                    .level_of
                    .get(&v.0)
                    .unwrap_or_else(|| panic!("variable x{} missing from order", v.0));
                self.mk(level, FALSE, TRUE)
            }
            BoolExpr::Not(inner) => match inner.as_ref() {
                BoolExpr::Var(v) => {
                    let level = *self
                        .level_of
                        .get(&v.0)
                        .unwrap_or_else(|| panic!("variable x{} missing from order", v.0));
                    self.mk(level, TRUE, FALSE)
                }
                _ => unreachable!("compile() normalizes to NNF first"),
            },
            BoolExpr::And(parts) => {
                let mut acc = TRUE;
                for p in parts {
                    let q = self.build(p, memo);
                    acc = self.apply_and(acc, q, &mut HashMap::new());
                    if acc == FALSE {
                        break;
                    }
                }
                acc
            }
            BoolExpr::Or(parts) => {
                let mut acc = FALSE;
                for p in parts {
                    let q = self.build(p, memo);
                    acc = self.apply_or(acc, q, &mut HashMap::new());
                    if acc == TRUE {
                        break;
                    }
                }
                acc
            }
        };
        memo.insert(expr.clone(), r);
        r
    }

    fn apply_and(&mut self, f: Ref, g: Ref, memo: &mut HashMap<(Ref, Ref), Ref>) -> Ref {
        match (f, g) {
            (FALSE, _) | (_, FALSE) => return FALSE,
            (TRUE, x) | (x, TRUE) => return x,
            _ => {}
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (nf, ng) = (self.nodes[f as usize], self.nodes[g as usize]);
        let level = nf.level.min(ng.level);
        let (f_lo, f_hi) = if nf.level == level {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if ng.level == level {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply_and(f_lo, g_lo, memo);
        let hi = self.apply_and(f_hi, g_hi, memo);
        let r = self.mk(level, lo, hi);
        memo.insert(key, r);
        r
    }

    fn apply_or(&mut self, f: Ref, g: Ref, memo: &mut HashMap<(Ref, Ref), Ref>) -> Ref {
        match (f, g) {
            (TRUE, _) | (_, TRUE) => return TRUE,
            (FALSE, x) | (x, FALSE) => return x,
            _ => {}
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (nf, ng) = (self.nodes[f as usize], self.nodes[g as usize]);
        let level = nf.level.min(ng.level);
        let (f_lo, f_hi) = if nf.level == level {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (g_lo, g_hi) = if ng.level == level {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply_or(f_lo, g_lo, memo);
        let hi = self.apply_or(f_hi, g_hi, memo);
        let r = self.mk(level, lo, hi);
        memo.insert(key, r);
        r
    }

    /// Number of internal (decision) nodes reachable from the root — the
    /// size measure of Theorem 7.1.
    pub fn size(&self) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r <= TRUE || std::mem::replace(&mut seen[r as usize], true) {
                continue;
            }
            count += 1;
            let n = self.nodes[r as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Evaluates the OBDD on an assignment.
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut r = self.root;
        while r > TRUE {
            let n = self.nodes[r as usize];
            let var = self.order[n.level as usize];
            r = if assignment(var) { n.hi } else { n.lo };
        }
        r == TRUE
    }

    /// Weighted model count in one bottom-up pass: `probs[var]` is the
    /// probability of that variable. Elided levels contribute a factor of 1
    /// in probability semantics, so no skip-correction is needed.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        self.prob_rec(self.root, probs, &mut memo)
    }

    fn prob_rec(&self, r: Ref, probs: &[f64], memo: &mut HashMap<Ref, f64>) -> f64 {
        match r {
            FALSE => return 0.0,
            TRUE => return 1.0,
            _ => {}
        }
        if let Some(&p) = memo.get(&r) {
            return p;
        }
        let n = self.nodes[r as usize];
        let var = self.order[n.level as usize];
        let pv = probs[var as usize];
        let p =
            pv * self.prob_rec(n.hi, probs, memo) + (1.0 - pv) * self.prob_rec(n.lo, probs, memo);
        memo.insert(r, p);
        p
    }

    /// Lowers the reachable part of the OBDD into a flat kernel program:
    /// terminals become constants, each internal node a decision on
    /// `order[level]` computing `p·hi + (1−p)·lo` — the exact arithmetic of
    /// [`Obdd::probability`], node for node (elided levels contribute a
    /// factor of 1 in both), so the flat evaluation is bit-identical to it.
    pub fn flatten(&self) -> FlatProgram {
        let mut b = FlatBuilder::new();
        let mut map: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut stack: Vec<(Ref, bool)> = vec![(self.root, false)];
        while let Some((r, expanded)) = stack.pop() {
            if map[r as usize] != u32::MAX {
                continue;
            }
            if r <= TRUE {
                map[r as usize] = b.push_const(r == TRUE);
                continue;
            }
            let n = self.nodes[r as usize];
            if expanded {
                let var = self.order[n.level as usize];
                map[r as usize] = b.push_decision(var, map[n.hi as usize], map[n.lo as usize]);
                continue;
            }
            stack.push((r, true));
            stack.push((n.hi, false));
            stack.push((n.lo, false));
        }
        b.finish()
            .expect("a post-order walk of a reduced OBDD flattens cleanly")
    }

    /// Unweighted model count over `num_vars` variables.
    pub fn model_count(&self, num_vars: u32) -> f64 {
        let probs = vec![0.5; self.order.len().max(num_vars as usize)];
        self.probability(&probs) * 2f64.powi(num_vars as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_data::TupleId;
    use pdb_num::assert_close;
    use pdb_wmc::brute;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    fn ident_order(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn terminals_and_single_vars() {
        let t = Obdd::compile(&BoolExpr::TRUE, &[]);
        assert_eq!(t.size(), 0);
        assert!(t.eval(&|_| false));
        let x = Obdd::compile(&v(0), &ident_order(1));
        assert_eq!(x.size(), 1);
        assert!(x.eval(&|_| true));
        assert!(!x.eval(&|_| false));
        let nx = Obdd::compile(&v(0).negate(), &ident_order(1));
        assert!(nx.eval(&|_| false));
    }

    #[test]
    fn canonical_reduction_merges_equivalent() {
        // x0 | (x0 & x1) == x0: reduced OBDD has one node.
        let f = BoolExpr::or_all([v(0), BoolExpr::and_all([v(0), v(1)])]);
        let obdd = Obdd::compile(&f, &ident_order(2));
        assert_eq!(obdd.size(), 1);
    }

    #[test]
    fn semantics_preserved_exhaustively() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1).negate()]),
            BoolExpr::and_all([v(1), v(2)]),
            v(3).negate(),
        ]);
        let obdd = Obdd::compile(&f, &ident_order(4));
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(obdd.eval(&a), f.eval(&|t| a(t.0)), "mask={mask}");
        }
    }

    #[test]
    fn probability_matches_brute_force() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let probs = [0.2, 0.7, 0.4, 0.9];
        let obdd = Obdd::compile(&f, &ident_order(4));
        assert_close(
            obdd.probability(&probs),
            brute::expr_probability(&f, &probs),
            1e-12,
        );
    }

    #[test]
    fn model_count() {
        // x0 | x1 has 3 models over 2 vars.
        let f = BoolExpr::or_all([v(0), v(1)]);
        let obdd = Obdd::compile(&f, &ident_order(2));
        assert_close(obdd.model_count(2), 3.0, 1e-12);
    }

    #[test]
    fn order_sensitivity_classic_example() {
        // f = (x0&x1) | (x2&x3) | (x4&x5): pair-adjacent order is linear,
        // interleaved order blows up exponentially (classic result).
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
            BoolExpr::and_all([v(4), v(5)]),
        ]);
        let good = Obdd::compile(&f, &[0, 1, 2, 3, 4, 5]);
        let bad = Obdd::compile(&f, &[0, 2, 4, 1, 3, 5]);
        assert!(
            good.size() < bad.size(),
            "{} vs {}",
            good.size(),
            bad.size()
        );
        // Both still compute f.
        for mask in 0u32..64 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(good.eval(&a), bad.eval(&a));
        }
    }

    #[test]
    fn flatten_is_bit_identical_to_tree_walk() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1).negate()]),
            BoolExpr::and_all([v(1), v(2)]),
            v(3).negate(),
        ]);
        let obdd = Obdd::compile(&f, &ident_order(4));
        let flat = obdd.flatten();
        for probs in [vec![0.5; 4], vec![0.2, 0.7, 0.4, 0.9]] {
            assert_eq!(
                flat.eval(&probs).to_bits(),
                obdd.probability(&probs).to_bits()
            );
        }
        // Terminal-rooted OBDDs flatten to constants.
        let t = Obdd::compile(&BoolExpr::TRUE, &[]);
        assert_eq!(t.flatten().eval(&[]), 1.0);
        let z = Obdd::compile(&BoolExpr::FALSE, &[]);
        assert_eq!(z.flatten().eval(&[]), 0.0);
    }

    #[test]
    fn eval_ignores_unmentioned_vars() {
        let f = v(2);
        let obdd = Obdd::compile(&f, &ident_order(5));
        assert!(obdd.eval(&|var| var == 2));
        assert_close(obdd.probability(&[0.9, 0.9, 0.3, 0.9, 0.9]), 0.3, 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing from order")]
    fn missing_variable_in_order_panics() {
        let _ = Obdd::compile(&v(7), &ident_order(3));
    }
}
