//! # pdb-compile — knowledge compilation targets (§7)
//!
//! Query compilation converts a lineage into a circuit from which weighted
//! model counts are read off in time linear in the circuit. This crate
//! implements the representations of §7 and Figure 2 and the conversions
//! between them:
//!
//! * [`obdd::Obdd`] — reduced *Ordered* BDDs with a unique table and an
//!   `apply` combinator; Theorem 7.1(i) is about their sizes,
//! * [`fbdd::Fbdd`] — *Free* BDDs (each path reads a variable once); built
//!   from DPLL traces without components,
//! * [`ddnnf::DecisionDnnf`] — FBDDs extended with independent-∧ nodes: the
//!   trace language of DPLL with caching *and* components (Theorem 7.1(ii)),
//! * [`ddnnf::Ddnnf`] — general d-DNNF circuits (disjoint-∨ / independent-∧ /
//!   leaf-¬), obtained from decision-DNNFs by expanding decisions,
//! * [`fig2`] — the two circuits of Figure 2, constructed verbatim,
//! * [`order`] — variable-order heuristics, including the hierarchical
//!   grouping that yields the linear-size OBDDs of Theorem 7.1(i-a).
//!
//! Every circuit type also exposes `flatten()`, lowering it into a
//! `pdb-kernel` [`FlatProgram`](pdb_kernel::FlatProgram) — a contiguous,
//! topologically-ordered array program evaluated by a non-recursive loop
//! (optionally over many probability vectors at once) with bit-identical
//! results to the tree walks here.

pub mod ddnnf;
pub mod fbdd;
pub mod fig2;
pub mod obdd;
pub mod order;

pub use ddnnf::{Ddnnf, DecisionDnnf};
pub use fbdd::Fbdd;
pub use obdd::Obdd;
