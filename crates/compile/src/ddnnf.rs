//! Decision-DNNFs and d-DNNFs.
//!
//! A *decision-DNNF* is an FBDD extended with independent-∧ nodes — exactly
//! the trace language of DPLL with caching and components (§7). A *d-DNNF*
//! is the general circuit form: ∨-nodes with *disjoint* children, ∧-nodes
//! with *independent* children, negation only at the leaves. Expanding every
//! decision node `⟨v, hi, lo⟩` into `(v ∧ hi) ∨ (¬v ∧ lo)` turns a
//! decision-DNNF into a d-DNNF whose ∨-disjointness is guaranteed by the
//! guard literals.

use pdb_kernel::{FlatBuilder, FlatProgram};
use pdb_wmc::{Trace, TraceNode, TraceNodeId};
use std::collections::{BTreeSet, HashMap};

/// Node of a [`DecisionDnnf`].
#[derive(Clone, Debug, PartialEq)]
pub enum DdnnfNode {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Shannon decision on a variable.
    Decision {
        /// Decision variable.
        var: u32,
        /// Child under `var = 1`.
        hi: u32,
        /// Child under `var = 0`.
        lo: u32,
    },
    /// Independent conjunction (children over disjoint variable sets).
    And {
        /// Child node indices.
        children: Vec<u32>,
    },
}

/// A decision-DNNF circuit (DAG, arena-allocated).
#[derive(Clone, Debug)]
pub struct DecisionDnnf {
    nodes: Vec<DdnnfNode>,
    root: u32,
}

impl DecisionDnnf {
    /// Builds from raw nodes; `root` indexes into `nodes`.
    pub fn new(nodes: Vec<DdnnfNode>, root: u32) -> DecisionDnnf {
        assert!((root as usize) < nodes.len());
        DecisionDnnf { nodes, root }
    }

    /// Converts a DPLL trace (Huang–Darwiche: the trace *is* the circuit).
    pub fn from_trace(trace: &Trace) -> DecisionDnnf {
        let nodes = trace
            .nodes()
            .iter()
            .map(|n| match n {
                TraceNode::True => DdnnfNode::True,
                TraceNode::False => DdnnfNode::False,
                TraceNode::Decision { var, hi, lo } => DdnnfNode::Decision {
                    var: *var,
                    hi: hi.0,
                    lo: lo.0,
                },
                TraceNode::And { children } => DdnnfNode::And {
                    children: children.iter().map(|c: &TraceNodeId| c.0).collect(),
                },
            })
            .collect();
        DecisionDnnf::new(nodes, trace.root().0)
    }

    /// The root node index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The node arena.
    pub fn nodes(&self) -> &[DdnnfNode] {
        &self.nodes
    }

    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i as usize], true) {
                continue;
            }
            match &self.nodes[i as usize] {
                DdnnfNode::True | DdnnfNode::False => {}
                DdnnfNode::Decision { hi, lo, .. } => {
                    stack.push(*hi);
                    stack.push(*lo);
                }
                DdnnfNode::And { children } => stack.extend(children.iter().copied()),
            }
        }
        seen
    }

    /// Number of reachable nodes (the Theorem 7.1 size measure).
    pub fn size(&self) -> usize {
        self.reachable().iter().filter(|&&b| b).count()
    }

    /// Number of reachable decision nodes.
    pub fn decision_count(&self) -> usize {
        let seen = self.reachable();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| seen[*i] && matches!(n, DdnnfNode::Decision { .. }))
            .count()
    }

    /// Number of reachable independent-∧ nodes.
    pub fn and_count(&self) -> usize {
        let seen = self.reachable();
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| seen[*i] && matches!(n, DdnnfNode::And { .. }))
            .count()
    }

    /// Evaluates the circuit on an assignment.
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        fn go(d: &DecisionDnnf, i: u32, a: &dyn Fn(u32) -> bool) -> bool {
            match &d.nodes[i as usize] {
                DdnnfNode::True => true,
                DdnnfNode::False => false,
                DdnnfNode::Decision { var, hi, lo } => {
                    if a(*var) {
                        go(d, *hi, a)
                    } else {
                        go(d, *lo, a)
                    }
                }
                DdnnfNode::And { children } => children.iter().all(|&c| go(d, c, a)),
            }
        }
        go(self, self.root, assignment)
    }

    /// Weighted model count (probability) in one memoized pass.
    pub fn probability(&self, probs: &[f64]) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.prob_rec(self.root, probs, &mut memo)
    }

    fn prob_rec(&self, i: u32, probs: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
        if let Some(&p) = memo.get(&i) {
            return p;
        }
        let p = match &self.nodes[i as usize] {
            DdnnfNode::True => 1.0,
            DdnnfNode::False => 0.0,
            DdnnfNode::Decision { var, hi, lo } => {
                let pv = probs[*var as usize];
                pv * self.prob_rec(*hi, probs, memo) + (1.0 - pv) * self.prob_rec(*lo, probs, memo)
            }
            DdnnfNode::And { children } => children
                .iter()
                .map(|&c| self.prob_rec(c, probs, memo))
                .product(),
        };
        memo.insert(i, p);
        p
    }

    /// The variables below each node (memoized); used to validate the
    /// independence of ∧-children and the read-once property.
    fn vars_below(&self, i: u32, memo: &mut HashMap<u32, BTreeSet<u32>>) -> BTreeSet<u32> {
        if let Some(s) = memo.get(&i) {
            return s.clone();
        }
        let s = match &self.nodes[i as usize] {
            DdnnfNode::True | DdnnfNode::False => BTreeSet::new(),
            DdnnfNode::Decision { var, hi, lo } => {
                let mut s = self.vars_below(*hi, memo);
                s.extend(self.vars_below(*lo, memo));
                s.insert(*var);
                s
            }
            DdnnfNode::And { children } => {
                let mut s = BTreeSet::new();
                for &c in children {
                    s.extend(self.vars_below(c, memo));
                }
                s
            }
        };
        memo.insert(i, s.clone());
        s
    }

    /// Checks the structural invariants: ∧-children have pairwise-disjoint
    /// variable sets, and no path reads a decision variable twice.
    pub fn validate(&self) -> Result<(), String> {
        let mut memo = HashMap::new();
        let seen = self.reachable();
        for (i, n) in self.nodes.iter().enumerate() {
            if !seen[i] {
                continue;
            }
            match n {
                DdnnfNode::And { children } => {
                    let sets: Vec<BTreeSet<u32>> = children
                        .iter()
                        .map(|&c| self.vars_below(c, &mut memo))
                        .collect();
                    for a in 0..sets.len() {
                        for b in a + 1..sets.len() {
                            if !sets[a].is_disjoint(&sets[b]) {
                                return Err(format!("∧-node {i} has dependent children"));
                            }
                        }
                    }
                }
                DdnnfNode::Decision { var, hi, lo }
                    if (self.vars_below(*hi, &mut memo).contains(var)
                        || self.vars_below(*lo, &mut memo).contains(var)) =>
                {
                    return Err(format!("decision node {i} re-reads its variable x{var}"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Lowers the circuit into a flat kernel program: reachable nodes in
    /// topological (post-DFS) order, evaluated by `pdb-kernel`'s
    /// non-recursive loop. Each node performs the same arithmetic as
    /// [`DecisionDnnf::probability`] — `p·hi + (1−p)·lo` for decisions, a
    /// left-to-right product for ∧ — and both compute every node exactly
    /// once, so `flatten().eval(probs)` is **bit-identical** to
    /// `probability(probs)`.
    pub fn flatten(&self) -> FlatProgram {
        let mut b = FlatBuilder::new();
        let mut map: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        // Iterative post-order DFS: children flatten before parents.
        let mut stack: Vec<(u32, bool)> = vec![(self.root, false)];
        while let Some((i, expanded)) = stack.pop() {
            if map[i as usize] != u32::MAX {
                continue;
            }
            if expanded {
                let flat = match &self.nodes[i as usize] {
                    DdnnfNode::True => b.push_const(true),
                    DdnnfNode::False => b.push_const(false),
                    DdnnfNode::Decision { var, hi, lo } => {
                        b.push_decision(*var, map[*hi as usize], map[*lo as usize])
                    }
                    DdnnfNode::And { children } => {
                        let kids: Vec<u32> = children.iter().map(|&c| map[c as usize]).collect();
                        b.push_mul(&kids)
                    }
                };
                map[i as usize] = flat;
                continue;
            }
            stack.push((i, true));
            match &self.nodes[i as usize] {
                DdnnfNode::True | DdnnfNode::False => {}
                DdnnfNode::Decision { hi, lo, .. } => {
                    stack.push((*hi, false));
                    stack.push((*lo, false));
                }
                DdnnfNode::And { children } => {
                    stack.extend(children.iter().map(|&c| (c, false)));
                }
            }
        }
        b.finish()
            .expect("a post-order walk of a DAG flattens cleanly")
    }

    /// Expands into a general [`Ddnnf`].
    pub fn to_ddnnf(&self) -> Ddnnf {
        let mut out = Ddnnf::default();
        let mut map: HashMap<u32, u32> = HashMap::new();
        let root = self.expand(self.root, &mut out, &mut map);
        out.root = root;
        out
    }

    fn expand(&self, i: u32, out: &mut Ddnnf, map: &mut HashMap<u32, u32>) -> u32 {
        if let Some(&r) = map.get(&i) {
            return r;
        }
        let r = match &self.nodes[i as usize] {
            DdnnfNode::True => out.push(DNode::True),
            DdnnfNode::False => out.push(DNode::False),
            DdnnfNode::Decision { var, hi, lo } => {
                let hi = self.expand(*hi, out, map);
                let lo = self.expand(*lo, out, map);
                let pos = out.push(DNode::Lit {
                    var: *var,
                    positive: true,
                });
                let neg = out.push(DNode::Lit {
                    var: *var,
                    positive: false,
                });
                let left = out.push(DNode::And {
                    children: vec![pos, hi],
                });
                let right = out.push(DNode::And {
                    children: vec![neg, lo],
                });
                out.push(DNode::Or {
                    children: vec![left, right],
                })
            }
            DdnnfNode::And { children } => {
                let kids: Vec<u32> = children.iter().map(|&c| self.expand(c, out, map)).collect();
                out.push(DNode::And { children: kids })
            }
        };
        map.insert(i, r);
        r
    }
}

/// Node of a general d-DNNF circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum DNode {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A literal (negation only at the leaves, per the d-DNNF definition).
    Lit {
        /// Variable id.
        var: u32,
        /// Polarity.
        positive: bool,
    },
    /// Independent conjunction.
    And {
        /// Children indices.
        children: Vec<u32>,
    },
    /// Disjoint ("deterministic") disjunction.
    Or {
        /// Children indices.
        children: Vec<u32>,
    },
}

/// A d-DNNF circuit.
#[derive(Clone, Debug, Default)]
pub struct Ddnnf {
    nodes: Vec<DNode>,
    root: u32,
}

impl Ddnnf {
    fn push(&mut self, n: DNode) -> u32 {
        self.nodes.push(n);
        (self.nodes.len() - 1) as u32
    }

    /// The node arena.
    pub fn nodes(&self) -> &[DNode] {
        &self.nodes
    }

    /// The root index.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Number of reachable nodes.
    pub fn size(&self) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut seen[i as usize], true) {
                continue;
            }
            count += 1;
            match &self.nodes[i as usize] {
                DNode::And { children } | DNode::Or { children } => {
                    stack.extend(children.iter().copied())
                }
                _ => {}
            }
        }
        count
    }

    /// Evaluates the circuit.
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        fn go(d: &Ddnnf, i: u32, a: &dyn Fn(u32) -> bool) -> bool {
            match &d.nodes[i as usize] {
                DNode::True => true,
                DNode::False => false,
                DNode::Lit { var, positive } => a(*var) == *positive,
                DNode::And { children } => children.iter().all(|&c| go(d, c, a)),
                DNode::Or { children } => children.iter().any(|&c| go(d, c, a)),
            }
        }
        go(self, self.root, assignment)
    }

    /// Weighted model count: ∨ sums (children are disjoint events), ∧
    /// multiplies (children are independent) — rules (12) and (13).
    pub fn probability(&self, probs: &[f64]) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        fn go(d: &Ddnnf, i: u32, probs: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
            if let Some(&p) = memo.get(&i) {
                return p;
            }
            let p = match &d.nodes[i as usize] {
                DNode::True => 1.0,
                DNode::False => 0.0,
                DNode::Lit { var, positive } => {
                    let pv = probs[*var as usize];
                    if *positive {
                        pv
                    } else {
                        1.0 - pv
                    }
                }
                DNode::And { children } => {
                    children.iter().map(|&c| go(d, c, probs, memo)).product()
                }
                DNode::Or { children } => children.iter().map(|&c| go(d, c, probs, memo)).sum(),
            };
            memo.insert(i, p);
            p
        }
        go(self, self.root, probs, &mut memo)
    }

    /// Lowers the circuit into a flat kernel program (see
    /// [`DecisionDnnf::flatten`]): disjoint-∨ becomes a left-to-right sum,
    /// independent-∧ a left-to-right product, literals become (negated)
    /// leaf reads — the exact arithmetic of [`Ddnnf::probability`], node
    /// for node, so the flat evaluation is bit-identical to it.
    pub fn flatten(&self) -> FlatProgram {
        let mut b = FlatBuilder::new();
        let mut map: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut stack: Vec<(u32, bool)> = vec![(self.root, false)];
        while let Some((i, expanded)) = stack.pop() {
            if map[i as usize] != u32::MAX {
                continue;
            }
            if expanded {
                let flat = match &self.nodes[i as usize] {
                    DNode::True => b.push_const(true),
                    DNode::False => b.push_const(false),
                    DNode::Lit { var, positive } => {
                        if *positive {
                            b.push_leaf(*var)
                        } else {
                            b.push_neg_leaf(*var)
                        }
                    }
                    DNode::And { children } => {
                        let kids: Vec<u32> = children.iter().map(|&c| map[c as usize]).collect();
                        b.push_mul(&kids)
                    }
                    DNode::Or { children } => {
                        let kids: Vec<u32> = children.iter().map(|&c| map[c as usize]).collect();
                        b.push_add(&kids)
                    }
                };
                map[i as usize] = flat;
                continue;
            }
            stack.push((i, true));
            match &self.nodes[i as usize] {
                DNode::And { children } | DNode::Or { children } => {
                    stack.extend(children.iter().map(|&c| (c, false)));
                }
                _ => {}
            }
        }
        b.finish()
            .expect("a post-order walk of a DAG flattens cleanly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_data::TupleId;
    use pdb_lineage::{BoolExpr, Cnf};
    use pdb_num::assert_close;
    use pdb_wmc::{brute, Dpll, DpllOptions};

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    fn trace_of(expr: &BoolExpr, n: u32, components: bool) -> (Trace, f64) {
        // Count ¬expr (negated monotone DNF) with trace recording.
        let cnf = Cnf::from_negated_dnf(expr, n);
        let result = Dpll::new(
            &cnf,
            vec![0.5; n as usize],
            DpllOptions {
                components,
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        (result.trace.unwrap(), result.probability)
    }

    #[test]
    fn from_trace_preserves_semantics_and_count() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let (trace, p) = trace_of(&f, 4, true);
        let dd = DecisionDnnf::from_trace(&trace);
        dd.validate().unwrap();
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            // The trace computes ¬f.
            assert_eq!(dd.eval(&a), !f.eval(&|t| a(t.0)));
        }
        assert_close(dd.probability(&[0.5; 4]), p, 1e-12);
    }

    #[test]
    fn component_traces_contain_and_nodes() {
        // Two fully independent blocks force a component split.
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let (trace, _) = trace_of(&f, 4, true);
        let dd = DecisionDnnf::from_trace(&trace);
        assert!(dd.and_count() >= 1, "expected a component ∧-node");
        let (trace_nc, _) = trace_of(&f, 4, false);
        let dd_nc = DecisionDnnf::from_trace(&trace_nc);
        assert_eq!(dd_nc.and_count(), 0, "components disabled");
        dd_nc.validate().unwrap();
    }

    #[test]
    fn probability_matches_brute_force_weighted() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(1), v(2)]),
        ]);
        let probs = [0.3, 0.6, 0.8];
        let cnf = Cnf::from_negated_dnf(&f, 3);
        let result = Dpll::new(
            &cnf,
            probs.to_vec(),
            DpllOptions {
                record_trace: true,
                ..Default::default()
            },
        )
        .run();
        let dd = DecisionDnnf::from_trace(&result.trace.unwrap());
        let expected = 1.0 - brute::expr_probability(&f, &probs);
        assert_close(dd.probability(&probs), expected, 1e-12);
    }

    #[test]
    fn ddnnf_expansion_preserves_everything() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let (trace, _) = trace_of(&f, 4, true);
        let dd = DecisionDnnf::from_trace(&trace);
        let circuit = dd.to_ddnnf();
        let probs = [0.1, 0.9, 0.4, 0.6];
        assert_close(circuit.probability(&probs), dd.probability(&probs), 1e-12);
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(circuit.eval(&a), dd.eval(&a), "mask={mask}");
        }
        // Expansion adds Or/Lit nodes.
        assert!(circuit.size() >= dd.size());
    }

    #[test]
    fn flatten_is_bit_identical_to_tree_walk() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
            BoolExpr::and_all([v(1), v(4)]),
        ]);
        let (trace, _) = trace_of(&f, 5, true);
        let dd = DecisionDnnf::from_trace(&trace);
        let flat = dd.flatten();
        let circuit = dd.to_ddnnf();
        let flat_circuit = circuit.flatten();
        for probs in [
            vec![0.5; 5],
            vec![0.1, 0.9, 0.33, 0.77, 0.5],
            vec![0.0, 1.0, 0.25, 0.5, 0.125],
        ] {
            assert_eq!(
                flat.eval(&probs).to_bits(),
                dd.probability(&probs).to_bits()
            );
            assert_eq!(
                flat_circuit.eval(&probs).to_bits(),
                circuit.probability(&probs).to_bits()
            );
        }
        // Batched evaluation over three stacked vectors matches too.
        let stacked: Vec<f64> = [
            vec![0.5; 5],
            vec![0.1, 0.9, 0.33, 0.77, 0.5],
            vec![0.0, 1.0, 0.25, 0.5, 0.125],
        ]
        .concat();
        let lanes = flat.eval_batch(&stacked, 5);
        assert_eq!(lanes.len(), 3);
        for (lane, chunk) in lanes.iter().zip(stacked.chunks(5)) {
            assert_eq!(lane.to_bits(), dd.probability(chunk).to_bits());
        }
    }

    #[test]
    fn validate_rejects_dependent_and() {
        // Hand-build an invalid circuit: And over two decisions on the SAME var.
        let nodes = vec![
            DdnnfNode::True,  // 0
            DdnnfNode::False, // 1
            DdnnfNode::Decision {
                var: 0,
                hi: 0,
                lo: 1,
            }, // 2
            DdnnfNode::Decision {
                var: 0,
                hi: 1,
                lo: 0,
            }, // 3
            DdnnfNode::And {
                children: vec![2, 3],
            }, // 4
        ];
        let dd = DecisionDnnf::new(nodes, 4);
        assert!(dd.validate().is_err());
    }

    #[test]
    fn validate_rejects_repeated_reads() {
        let nodes = vec![
            DdnnfNode::True,  // 0
            DdnnfNode::False, // 1
            DdnnfNode::Decision {
                var: 0,
                hi: 0,
                lo: 1,
            }, // 2
            DdnnfNode::Decision {
                var: 0,
                hi: 2,
                lo: 1,
            }, // 3 re-reads x0
        ];
        let dd = DecisionDnnf::new(nodes, 3);
        assert!(dd.validate().is_err());
    }
}
