//! The two circuits of the paper's Figure 2, constructed verbatim.
//!
//! (a) An FBDD representing `(¬X)YZ ∨ XY ∨ XZ`.
//! (b) A decision-DNNF representing `(¬X)YZU ∨ XYZ ∨ XZU`.
//!
//! Variable numbering: `X = 0, Y = 1, Z = 2, U = 3`.

use crate::ddnnf::{DdnnfNode, DecisionDnnf};
use crate::fbdd::Fbdd;

/// Variable `X`.
pub const X: u32 = 0;
/// Variable `Y`.
pub const Y: u32 = 1;
/// Variable `Z`.
pub const Z: u32 = 2;
/// Variable `U`.
pub const U: u32 = 3;

/// The reference function of Fig. 2(a): `(¬X)YZ ∨ XY ∨ XZ`.
#[allow(clippy::nonminimal_bool)] // written exactly as the figure's formula
pub fn fig2a_function(x: bool, y: bool, z: bool) -> bool {
    (!x && y && z) || (x && y) || (x && z)
}

/// The reference function of Fig. 2(b): `(¬X)YZU ∨ XYZ ∨ XZU`.
#[allow(clippy::nonminimal_bool)] // written exactly as the figure's formula
pub fn fig2b_function(x: bool, y: bool, z: bool, u: bool) -> bool {
    (!x && y && z && u) || (x && y && z) || (x && z && u)
}

/// Figure 2(a): the FBDD.
///
/// On `X = 0` the paths check `Y` then `Z`; on `X = 1` they check `Y`, and
/// on `Y = 0` fall through to `Z`. The `Z?` test is shared between the two
/// branches (DAG sharing), giving four decision nodes; every path reads each
/// variable at most once.
pub fn fig2a_fbdd() -> Fbdd {
    let nodes = vec![
        DdnnfNode::True,  // 0
        DdnnfNode::False, // 1
        DdnnfNode::Decision {
            var: Z,
            hi: 0,
            lo: 1,
        }, // 2: Z?
        DdnnfNode::Decision {
            var: Y,
            hi: 2,
            lo: 1,
        }, // 3: X=0 branch: Y then Z
        DdnnfNode::Decision {
            var: Y,
            hi: 0,
            lo: 2,
        }, // 4: X=1 branch: Y, else Z
        DdnnfNode::Decision {
            var: X,
            hi: 4,
            lo: 3,
        }, // 5: root
    ];
    Fbdd::from_nodes(nodes, 5).expect("Fig. 2(a) is a valid FBDD")
}

/// Figure 2(b): the decision-DNNF.
///
/// `X = 1` gives `Z ∧ (Y ∨ U)`: an independent-∧ node over the decision on
/// `Z` and a decision chain on `Y`/`U`. `X = 0` gives `Y ∧ Z ∧ U`, again an
/// independent-∧ of single-variable decisions (sharing the `Z?` and `U?`
/// subtrees with the other branch — the DAG sharing a DPLL cache provides).
pub fn fig2b_decision_dnnf() -> DecisionDnnf {
    let nodes = vec![
        DdnnfNode::True,  // 0
        DdnnfNode::False, // 1
        DdnnfNode::Decision {
            var: Z,
            hi: 0,
            lo: 1,
        }, // 2: Z?
        DdnnfNode::Decision {
            var: U,
            hi: 0,
            lo: 1,
        }, // 3: U?
        DdnnfNode::Decision {
            var: Y,
            hi: 0,
            lo: 3,
        }, // 4: Y ∨ U (as decisions)
        DdnnfNode::And {
            children: vec![2, 4],
        }, // 5: X=1: Z ∧ (Y ∨ U)
        DdnnfNode::Decision {
            var: Y,
            hi: 0,
            lo: 1,
        }, // 6: Y?
        DdnnfNode::And {
            children: vec![6, 2, 3],
        }, // 7: X=0: Y ∧ Z ∧ U
        DdnnfNode::Decision {
            var: X,
            hi: 5,
            lo: 7,
        }, // 8: root
    ];
    DecisionDnnf::new(nodes, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_num::assert_close;

    #[test]
    fn fig2a_computes_its_formula() {
        let fbdd = fig2a_fbdd();
        for mask in 0u32..8 {
            let (x, y, z) = (mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1);
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(fbdd.eval(&a), fig2a_function(x, y, z), "mask={mask}");
        }
    }

    #[test]
    fn fig2a_has_four_decision_nodes_with_sharing() {
        assert_eq!(fig2a_fbdd().decision_count(), 4);
    }

    #[test]
    fn fig2a_is_free_but_not_ordered() {
        let fbdd = fig2a_fbdd();
        // In this construction both branches read Y first, so it happens to
        // be orderable — the figure's point is freeness, which the
        // constructor's validation already checks. 4 decisions + 2 terminals.
        assert_eq!(fbdd.size(), 6);
    }

    #[test]
    fn fig2b_computes_its_formula() {
        let dd = fig2b_decision_dnnf();
        dd.validate()
            .expect("Fig. 2(b) satisfies d-DNNF invariants");
        for mask in 0u32..16 {
            let (x, y, z, u) = (
                mask & 1 == 1,
                mask >> 1 & 1 == 1,
                mask >> 2 & 1 == 1,
                mask >> 3 & 1 == 1,
            );
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(dd.eval(&a), fig2b_function(x, y, z, u), "mask={mask}");
        }
    }

    #[test]
    fn fig2b_has_and_nodes_and_sharing() {
        let dd = fig2b_decision_dnnf();
        assert_eq!(dd.and_count(), 2);
        // The Z? node is shared between the two ∧-nodes: total decisions is
        // 5, not 6.
        assert_eq!(dd.decision_count(), 5);
    }

    #[test]
    fn fig2b_probability_is_sound() {
        let dd = fig2b_decision_dnnf();
        let probs = [0.5, 0.5, 0.5, 0.5];
        // Count models: brute force over the reference function.
        let models = (0u32..16)
            .filter(|mask| {
                fig2b_function(
                    mask & 1 == 1,
                    mask >> 1 & 1 == 1,
                    mask >> 2 & 1 == 1,
                    mask >> 3 & 1 == 1,
                )
            })
            .count();
        assert_close(dd.probability(&probs), models as f64 / 16.0, 1e-12);
    }

    #[test]
    fn fig2a_probability_under_uniform_weights() {
        let fbdd = fig2a_fbdd();
        let models = (0u32..8)
            .filter(|mask| fig2a_function(mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1))
            .count();
        assert_close(
            fbdd.probability(&[0.5, 0.5, 0.5]),
            models as f64 / 8.0,
            1e-12,
        );
    }
}
