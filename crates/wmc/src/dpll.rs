//! A DPLL-style weighted model counter with caching and components.
//!
//! This is the grounded-inference engine of §7: full backtracking search
//! using Shannon expansion (rule (11)) and the *components* rule (rule (12)),
//! with component caching in the style of Cachet/sharpSAT. Unit clauses are
//! branched first (unit propagation as a degenerate Shannon step), so the
//! recorded trace stays a pure decision structure.
//!
//! Following Huang–Darwiche, the **trace** of a run is a knowledge-compilation
//! circuit:
//! * caching + fixed variable order ⇒ an OBDD,
//! * caching, free order, no components ⇒ an FBDD,
//! * caching + components ⇒ a decision-DNNF.
//!
//! The trace is recorded as a [`Trace`] DAG (cache hits create sharing);
//! `pdb-compile` re-exports it as a decision-DNNF circuit, and the Theorem 7.1
//! experiments measure its size.

use pdb_lineage::{Clause, Cnf};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Tuning knobs for the counter (each maps to a §7 concept).
#[derive(Clone, Debug)]
pub struct DpllOptions {
    /// Apply the components rule (12). Off ⇒ FBDD-shaped traces.
    pub components: bool,
    /// Cache component results. Off ⇒ the trace is a tree (no sharing).
    pub caching: bool,
    /// Record the trace DAG.
    pub record_trace: bool,
    /// Fixed variable order (OBDD-shaped traces when components are off).
    /// Variables not listed are ordered after listed ones, by index.
    pub var_order: Option<Vec<u32>>,
    /// Abort after this many decision nodes (0 = unlimited); exponential
    /// instances are the *point* of some experiments, so callers can bound
    /// the blow-up and detect it.
    pub max_decisions: u64,
}

impl Default for DpllOptions {
    fn default() -> DpllOptions {
        DpllOptions {
            components: true,
            caching: true,
            record_trace: false,
            var_order: None,
            max_decisions: 0,
        }
    }
}

/// Counters describing a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DpllStats {
    /// Shannon branches taken (unit propagations included).
    pub decisions: u64,
    /// Component cache hits.
    pub cache_hits: u64,
    /// Component cache misses (entries stored).
    pub cache_misses: u64,
    /// Number of times a formula split into ≥ 2 components.
    pub component_splits: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u64,
}

/// Identifier of a trace node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceNodeId(pub u32);

/// One node of the recorded trace DAG.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceNode {
    /// The constant-true leaf.
    True,
    /// The constant-false leaf.
    False,
    /// A Shannon decision on `var`.
    Decision {
        /// The branched variable.
        var: u32,
        /// Subtrace under `var = 1`.
        hi: TraceNodeId,
        /// Subtrace under `var = 0`.
        lo: TraceNodeId,
    },
    /// An independent-∧ node (component split).
    And {
        /// The independent subtraces.
        children: Vec<TraceNodeId>,
    },
}

/// The trace DAG of a DPLL run (a decision-DNNF per Huang–Darwiche).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    nodes: Vec<TraceNode>,
    root: Option<TraceNodeId>,
}

impl Trace {
    const TRUE: TraceNodeId = TraceNodeId(0);
    const FALSE: TraceNodeId = TraceNodeId(1);

    fn new() -> Trace {
        Trace {
            nodes: vec![TraceNode::True, TraceNode::False],
            root: None,
        }
    }

    fn push(&mut self, node: TraceNode) -> TraceNodeId {
        let id = TraceNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The root node id.
    pub fn root(&self) -> TraceNodeId {
        self.root.expect("trace has a root after a completed run")
    }

    /// The node behind an id.
    pub fn node(&self, id: TraceNodeId) -> &TraceNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes (index = id).
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Number of nodes *reachable from the root* — the size measure used in
    /// the Theorem 7.1 experiments.
    pub fn reachable_size(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            count += 1;
            match &self.nodes[id.0 as usize] {
                TraceNode::True | TraceNode::False => {}
                TraceNode::Decision { hi, lo, .. } => {
                    stack.push(*hi);
                    stack.push(*lo);
                }
                TraceNode::And { children } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// Number of decision nodes reachable from the root.
    pub fn decision_count(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            match &self.nodes[id.0 as usize] {
                TraceNode::True | TraceNode::False => {}
                TraceNode::Decision { hi, lo, .. } => {
                    count += 1;
                    stack.push(*hi);
                    stack.push(*lo);
                }
                TraceNode::And { children } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// Evaluates the trace as a circuit on an assignment (for validation:
    /// the trace must compute exactly the counted formula).
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        fn go(t: &Trace, id: TraceNodeId, a: &dyn Fn(u32) -> bool) -> bool {
            match t.node(id) {
                TraceNode::True => true,
                TraceNode::False => false,
                TraceNode::Decision { var, hi, lo } => {
                    if a(*var) {
                        go(t, *hi, a)
                    } else {
                        go(t, *lo, a)
                    }
                }
                TraceNode::And { children } => children.iter().all(|c| go(t, *c, a)),
            }
        }
        go(self, self.root(), assignment)
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct DpllResult {
    /// The weighted count: `p(F)` under the given per-variable probabilities.
    pub probability: f64,
    /// Run statistics.
    pub stats: DpllStats,
    /// The recorded trace, when requested.
    pub trace: Option<Trace>,
    /// True when `max_decisions` aborted the run (probability is invalid).
    pub aborted: bool,
}

/// The counter itself. Create with [`Dpll::new`], run with [`Dpll::run`].
pub struct Dpll {
    clauses: Vec<Clause>,
    probs: Vec<f64>,
    options: DpllOptions,
    order_rank: Vec<u32>,
    stats: DpllStats,
    trace: Trace,
    cache: HashMap<Vec<i32>, (f64, TraceNodeId)>,
    /// Reusable per-variable occurrence buffer for [`Dpll::pick_var`]
    /// (all-zero between calls), replacing a per-call `HashMap`.
    counts: Vec<u32>,
    aborted: bool,
}

impl Dpll {
    /// Prepares a counter for `cnf` with per-variable probabilities
    /// (`probs.len() == cnf.num_vars`; Tseitin auxiliaries should get 1/2 and
    /// the caller corrects by `2^aux` — see `pdb-wmc::prob`).
    pub fn new(cnf: &Cnf, probs: Vec<f64>, options: DpllOptions) -> Dpll {
        assert_eq!(probs.len() as u32, cnf.num_vars, "one probability per var");
        let mut order_rank = vec![u32::MAX; cnf.num_vars as usize];
        if let Some(order) = &options.var_order {
            for (rank, &v) in order.iter().enumerate() {
                if (v as usize) < order_rank.len() {
                    order_rank[v as usize] = rank as u32;
                }
            }
        }
        Dpll {
            clauses: cnf.clauses.clone(),
            probs,
            options,
            order_rank,
            stats: DpllStats::default(),
            trace: Trace::new(),
            cache: HashMap::new(),
            counts: vec![0; cnf.num_vars as usize],
            aborted: false,
        }
    }

    /// Runs the counter.
    pub fn run(mut self) -> DpllResult {
        let clauses = std::mem::take(&mut self.clauses);
        let (p, node) = self.solve(clauses, 0);
        self.trace.root = Some(node);
        DpllResult {
            probability: if self.aborted { f64::NAN } else { p },
            stats: self.stats,
            trace: if self.options.record_trace {
                Some(self.trace)
            } else {
                None
            },
            aborted: self.aborted,
        }
    }

    fn solve(&mut self, clauses: Vec<Clause>, depth: u64) -> (f64, TraceNodeId) {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.aborted {
            return (f64::NAN, Trace::TRUE);
        }
        if clauses.is_empty() {
            return (1.0, Trace::TRUE);
        }
        if clauses.iter().any(Clause::is_empty) {
            return (0.0, Trace::FALSE);
        }
        // Cache lookup on the canonical component serialization.
        let key = if self.options.caching {
            Some(serialize(&clauses))
        } else {
            None
        };
        if let Some(k) = &key {
            if let Some(&(p, node)) = self.cache.get(k.as_slice()) {
                self.stats.cache_hits += 1;
                return (p, node);
            }
        }
        // Component decomposition.
        if self.options.components {
            let comps = split_components(&clauses);
            if comps.len() > 1 {
                self.stats.component_splits += 1;
                let mut p = 1.0;
                let mut children = Vec::with_capacity(comps.len());
                for comp in comps {
                    let (cp, cnode) = self.solve(comp, depth + 1);
                    p *= cp;
                    children.push(cnode);
                }
                let node = if self.options.record_trace {
                    self.trace.push(TraceNode::And { children })
                } else {
                    Trace::TRUE
                };
                if let Some(k) = key {
                    self.cache.insert(k, (p, node));
                    self.stats.cache_misses += 1;
                }
                return (p, node);
            }
        }
        // Pick the branch variable: a unit literal's variable if any
        // (unit propagation as a Shannon step), else the heuristic choice.
        let var = match clauses.iter().find(|c| c.lits().len() == 1) {
            Some(unit) => unit.lits()[0].var(),
            None => self.pick_var(&clauses),
        };
        self.stats.decisions += 1;
        if self.options.max_decisions > 0 && self.stats.decisions > self.options.max_decisions {
            self.aborted = true;
            return (f64::NAN, Trace::TRUE);
        }
        let p = self.probs[var as usize];
        let (hi_p, hi_node) = self.solve(condition(&clauses, var, true), depth + 1);
        let (lo_p, lo_node) = self.solve(condition(&clauses, var, false), depth + 1);
        let total = p * hi_p + (1.0 - p) * lo_p;
        let node = if self.options.record_trace {
            self.trace.push(TraceNode::Decision {
                var,
                hi: hi_node,
                lo: lo_node,
            })
        } else {
            Trace::TRUE
        };
        if let Some(k) = key {
            self.cache.insert(k, (total, node));
            self.stats.cache_misses += 1;
        }
        (total, node)
    }

    /// Branch-variable heuristic: lowest fixed-order rank if an order was
    /// given, otherwise the most frequently occurring variable.
    fn pick_var(&mut self, clauses: &[Clause]) -> u32 {
        if self.options.var_order.is_some() {
            lowest_rank_var(clauses, &self.order_rank)
        } else {
            most_frequent_var(clauses, &mut self.counts)
        }
    }
}

/// The variable with the lowest `(rank, index)` among those occurring in
/// `clauses` (fixed-order branching).
fn lowest_rank_var(clauses: &[Clause], order_rank: &[u32]) -> u32 {
    let mut best = u32::MAX;
    let mut best_rank = (u32::MAX, u32::MAX);
    for c in clauses {
        for l in c.lits() {
            let v = l.var();
            let rank = (order_rank[v as usize], v);
            if rank < best_rank {
                best_rank = rank;
                best = v;
            }
        }
    }
    best
}

/// The most frequently occurring variable, breaking ties toward the lowest
/// index — the same choice `max_by_key` over `(count, Reverse(var))` made,
/// but allocation-free. `counts` must be all-zero on entry (one slot per
/// variable) and is zeroed again before returning.
fn most_frequent_var(clauses: &[Clause], counts: &mut [u32]) -> u32 {
    for c in clauses {
        for l in c.lits() {
            counts[l.var() as usize] += 1;
        }
    }
    let mut best = u32::MAX;
    let mut best_count = 0u32;
    for c in clauses {
        for l in c.lits() {
            let v = l.var();
            let n = counts[v as usize];
            if n > best_count || (n == best_count && v < best) {
                best_count = n;
                best = v;
            }
        }
    }
    for c in clauses {
        for l in c.lits() {
            counts[l.var() as usize] = 0;
        }
    }
    debug_assert!(best != u32::MAX, "non-empty clauses have variables");
    best
}

/// Lock-striped component cache for [`run_parallel`]: keys are hashed to a
/// shard, so concurrent branches contend only when they touch the same
/// stripe. Values are probabilities only — parallel runs never record traces.
struct ShardedCache {
    shards: Vec<Mutex<HashMap<Vec<i32>, f64>>>,
}

impl ShardedCache {
    fn new(shards: usize) -> ShardedCache {
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(&self, key: &[i32]) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    fn get(&self, key: &[i32]) -> Option<f64> {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap()
            .get(key)
            .copied()
    }

    fn insert(&self, key: Vec<i32>, p: f64) {
        let shard = self.shard_of(&key);
        self.shards[shard].lock().unwrap().insert(key, p);
    }
}

/// Shared state of one [`run_parallel`] invocation.
struct ParCtx<'a> {
    probs: &'a [f64],
    options: &'a DpllOptions,
    order_rank: &'a [u32],
    pool: &'a pdb_par::Pool,
    cache: ShardedCache,
    decisions: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    component_splits: AtomicU64,
    max_depth: AtomicU64,
    aborted: AtomicBool,
}

/// Fork parallel work only this close to the root: deeper subproblems are
/// small and task overhead would dominate.
const PAR_DEPTH: u64 = 4;

/// Counts `cnf` on `pool`, running independent components (and the two
/// Shannon branches) in parallel at shallow depths over a lock-striped
/// component cache.
///
/// The returned probability is bit-identical to [`Dpll::run`]: subproblem
/// values do not depend on execution order (cache entries equal what
/// recomputation would produce), and every floating-point combination —
/// the left-to-right component product and `p·hi + (1−p)·lo` — is evaluated
/// in the same order as the sequential code. With a pool of size 1, or when
/// a trace is requested, this *is* the sequential counter, trace and stats
/// included. On larger pools `stats.decisions` and the cache counters can
/// differ from the sequential run (concurrent branches race to the cache),
/// so `max_decisions` budgets are only approximate there — abort detection
/// itself remains reliable.
pub fn run_parallel(
    cnf: &Cnf,
    probs: &[f64],
    options: DpllOptions,
    pool: &pdb_par::Pool,
) -> DpllResult {
    if pool.threads() == 1 || options.record_trace {
        return Dpll::new(cnf, probs.to_vec(), options).run();
    }
    assert_eq!(probs.len() as u32, cnf.num_vars, "one probability per var");
    let mut order_rank = vec![u32::MAX; cnf.num_vars as usize];
    if let Some(order) = &options.var_order {
        for (rank, &v) in order.iter().enumerate() {
            if (v as usize) < order_rank.len() {
                order_rank[v as usize] = rank as u32;
            }
        }
    }
    let ctx = ParCtx {
        probs,
        options: &options,
        order_rank: &order_rank,
        pool,
        cache: ShardedCache::new(16),
        decisions: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        component_splits: AtomicU64::new(0),
        max_depth: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
    };
    let mut counts = vec![0u32; probs.len()];
    let p = par_solve(&ctx, cnf.clauses.clone(), 0, &mut counts);
    let aborted = ctx.aborted.load(Ordering::Acquire);
    DpllResult {
        probability: if aborted { f64::NAN } else { p },
        stats: DpllStats {
            decisions: ctx.decisions.load(Ordering::Relaxed),
            cache_hits: ctx.cache_hits.load(Ordering::Relaxed),
            cache_misses: ctx.cache_misses.load(Ordering::Relaxed),
            component_splits: ctx.component_splits.load(Ordering::Relaxed),
            max_depth: ctx.max_depth.load(Ordering::Relaxed),
        },
        trace: None,
        aborted,
    }
}

fn par_solve(ctx: &ParCtx<'_>, clauses: Vec<Clause>, depth: u64, counts: &mut [u32]) -> f64 {
    ctx.max_depth.fetch_max(depth, Ordering::Relaxed);
    if ctx.aborted.load(Ordering::Relaxed) {
        return f64::NAN;
    }
    if clauses.is_empty() {
        return 1.0;
    }
    if clauses.iter().any(Clause::is_empty) {
        return 0.0;
    }
    let key = ctx.options.caching.then(|| serialize(&clauses));
    if let Some(k) = &key {
        if let Some(p) = ctx.cache.get(k) {
            ctx.cache_hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
    }
    let fork = depth < PAR_DEPTH;
    if ctx.options.components {
        let comps = split_components(&clauses);
        if comps.len() > 1 {
            ctx.component_splits.fetch_add(1, Ordering::Relaxed);
            // Multiply in component order (it is deterministic — components
            // are sorted by serialization) to match the sequential fold.
            let p = if fork {
                ctx.pool
                    .parallel_map(comps, |comp| {
                        let mut local = vec![0u32; ctx.probs.len()];
                        par_solve(ctx, comp, depth + 1, &mut local)
                    })
                    .into_iter()
                    .product()
            } else {
                let mut p = 1.0;
                for comp in comps {
                    p *= par_solve(ctx, comp, depth + 1, counts);
                }
                p
            };
            if let Some(k) = key {
                ctx.cache.insert(k, p);
                ctx.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            return p;
        }
    }
    let var = match clauses.iter().find(|c| c.lits().len() == 1) {
        Some(unit) => unit.lits()[0].var(),
        None if ctx.options.var_order.is_some() => lowest_rank_var(&clauses, ctx.order_rank),
        None => most_frequent_var(&clauses, counts),
    };
    let decisions = ctx.decisions.fetch_add(1, Ordering::Relaxed) + 1;
    if ctx.options.max_decisions > 0 && decisions > ctx.options.max_decisions {
        ctx.aborted.store(true, Ordering::Release);
        return f64::NAN;
    }
    let p = ctx.probs[var as usize];
    let (hi, lo) = if fork {
        ctx.pool.join(
            || {
                let mut local = vec![0u32; ctx.probs.len()];
                par_solve(ctx, condition(&clauses, var, true), depth + 1, &mut local)
            },
            || {
                let mut local = vec![0u32; ctx.probs.len()];
                par_solve(ctx, condition(&clauses, var, false), depth + 1, &mut local)
            },
        )
    } else {
        let hi = par_solve(ctx, condition(&clauses, var, true), depth + 1, counts);
        let lo = par_solve(ctx, condition(&clauses, var, false), depth + 1, counts);
        (hi, lo)
    };
    let total = p * hi + (1.0 - p) * lo;
    if let Some(k) = key {
        ctx.cache.insert(k, total);
        ctx.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    total
}

/// Conditions the clause set on `var = value`: satisfied clauses vanish,
/// falsified literals are removed.
fn condition(clauses: &[Clause], var: u32, value: bool) -> Vec<Clause> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        let mut touched = false;
        let mut satisfied = false;
        for l in c.lits() {
            if l.var() == var {
                touched = true;
                if l.satisfied_by(value) {
                    satisfied = true;
                    break;
                }
            }
        }
        if satisfied {
            continue;
        }
        if touched {
            out.push(Clause::new(
                c.lits()
                    .iter()
                    .filter(|l| l.var() != var)
                    .copied()
                    .collect(),
            ));
        } else {
            out.push(c.clone());
        }
    }
    out
}

/// Splits a clause set into variable-disjoint components (rule (12)).
fn split_components(clauses: &[Clause]) -> Vec<Vec<Clause>> {
    // Union-find over clause indices, keyed by shared variables.
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut owner: HashMap<u32, usize> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for l in c.lits() {
            match owner.get(&l.var()) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(l.var(), i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<Clause>> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        groups
            .entry(find(&mut parent, i))
            .or_default()
            .push(c.clone());
    }
    let mut out: Vec<Vec<Clause>> = groups.into_values().collect();
    out.sort_by_key(|a| serialize(a));
    out
}

/// Canonical serialization of a clause set (cache key).
fn serialize(clauses: &[Clause]) -> Vec<i32> {
    let mut sorted: Vec<&Clause> = clauses.iter().collect();
    sorted.sort();
    let mut out = Vec::with_capacity(clauses.len() * 4);
    for c in sorted {
        for l in c.lits() {
            let v = l.var() as i32 + 1;
            out.push(if l.is_pos() { v } else { -v });
        }
        out.push(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::TupleId;
    use pdb_lineage::{BoolExpr, Lit};
    use pdb_num::assert_close;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    fn check_against_brute(expr: &BoolExpr, probs: &[f64], options: DpllOptions) {
        // Count ¬expr via CNF and compare 1 − p.
        let cnf = Cnf::from_negated_dnf(expr, probs.len() as u32);
        let expected = 1.0 - brute::expr_probability(expr, probs);
        let result = Dpll::new(&cnf, probs.to_vec(), options).run();
        assert!(!result.aborted);
        assert_close(result.probability, expected, 1e-10);
    }

    #[test]
    fn counts_simple_dnf() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let probs = [0.3, 0.6, 0.2];
        check_against_brute(&f, &probs, DpllOptions::default());
    }

    #[test]
    fn all_option_combinations_agree() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(1), v(2)]),
            BoolExpr::and_all([v(3), v(4)]),
        ]);
        let probs = [0.1, 0.5, 0.9, 0.3, 0.7];
        for components in [false, true] {
            for caching in [false, true] {
                let opts = DpllOptions {
                    components,
                    caching,
                    record_trace: true,
                    ..Default::default()
                };
                check_against_brute(&f, &probs, opts);
            }
        }
    }

    #[test]
    fn trace_computes_the_formula() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 4], opts).run();
        let trace = result.trace.unwrap();
        // The trace computes ¬f (we counted the negated DNF).
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(trace.eval(&a), !f.eval(&|t| a(t.0)), "mask={mask}");
        }
        assert!(trace.reachable_size() > 2);
    }

    #[test]
    fn components_rule_fires_on_disjoint_parts() {
        // Two independent blocks: (x0 ∨ x1) ∧ (x2 ∨ x3)
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(3)]),
            ],
            4,
        );
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 4], opts).run();
        assert!(result.stats.component_splits >= 1);
        assert_close(result.probability, 0.75 * 0.75, 1e-12);
    }

    #[test]
    fn unit_propagation_branches_units_first() {
        // x0 ∧ (x0 ∨ x1): unit clause forces x0.
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
            ],
            2,
        );
        let result = Dpll::new(&cnf, vec![0.3, 0.9], DpllOptions::default()).run();
        assert_close(result.probability, 0.3, 1e-12);
    }

    #[test]
    fn caching_reduces_work() {
        // A formula with many identical subproblems: chain of implications.
        let mut clauses = Vec::new();
        for i in 0..10u32 {
            clauses.push(Clause::new(vec![Lit::neg(i), Lit::pos(i + 1)]));
        }
        let cnf = Cnf::new(clauses, 11);
        let with_cache = Dpll::new(
            &cnf,
            vec![0.5; 11],
            DpllOptions {
                caching: true,
                ..Default::default()
            },
        )
        .run();
        let without_cache = Dpll::new(
            &cnf,
            vec![0.5; 11],
            DpllOptions {
                caching: false,
                ..Default::default()
            },
        )
        .run();
        assert_close(with_cache.probability, without_cache.probability, 1e-12);
        assert!(with_cache.stats.decisions <= without_cache.stats.decisions);
    }

    #[test]
    fn fixed_variable_order_is_respected_and_correct() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(2)]),
            BoolExpr::and_all([v(1), v(3)]),
        ]);
        let probs = [0.2, 0.4, 0.6, 0.8];
        let opts = DpllOptions {
            components: false,
            var_order: Some(vec![3, 2, 1, 0]),
            ..Default::default()
        };
        check_against_brute(&f, &probs, opts);
    }

    #[test]
    fn unsatisfiable_counts_zero() {
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0)]),
            ],
            1,
        );
        let result = Dpll::new(&cnf, vec![0.5], DpllOptions::default()).run();
        assert_close(result.probability, 0.0, 1e-12);
    }

    #[test]
    fn empty_cnf_counts_one() {
        let cnf = Cnf::new(vec![], 3);
        let result = Dpll::new(&cnf, vec![0.5; 3], DpllOptions::default()).run();
        assert_close(result.probability, 1.0, 1e-12);
    }

    #[test]
    fn max_decisions_aborts() {
        // A hard-ish random instance with a tiny budget.
        let mut clauses = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(i),
                    Lit::pos(6 + i * 6 + j),
                    Lit::neg(42 + j),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 48);
        let opts = DpllOptions {
            max_decisions: 3,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 48], opts).run();
        assert!(result.aborted);
        assert!(result.probability.is_nan());
    }

    #[test]
    fn run_parallel_matches_sequential_bitwise() {
        // A mix of shapes: chains (cache-friendly), disjoint blocks
        // (component splits), and a dense block (pure Shannon branching).
        let mut clauses = Vec::new();
        for i in 0..8u32 {
            clauses.push(Clause::new(vec![Lit::neg(i), Lit::pos(i + 1)]));
        }
        for b in 0..4u32 {
            let base = 9 + b * 3;
            clauses.push(Clause::new(vec![Lit::pos(base), Lit::pos(base + 1)]));
            clauses.push(Clause::new(vec![Lit::neg(base + 1), Lit::pos(base + 2)]));
        }
        for i in 0..4u32 {
            for j in 0..4u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(21 + i),
                    Lit::pos(25 + j),
                    Lit::neg(21 + (i + j) % 4),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 29);
        let probs: Vec<f64> = (0..29).map(|i| 0.05 + 0.9 * (i as f64 / 28.0)).collect();
        for components in [false, true] {
            for caching in [false, true] {
                let opts = DpllOptions {
                    components,
                    caching,
                    ..Default::default()
                };
                let seq = Dpll::new(&cnf, probs.clone(), opts.clone()).run();
                for threads in [1, 2, 4, 8] {
                    let pool = pdb_par::Pool::new(threads);
                    let par = run_parallel(&cnf, &probs, opts.clone(), &pool);
                    assert!(!par.aborted);
                    assert_eq!(
                        par.probability.to_bits(),
                        seq.probability.to_bits(),
                        "threads={threads} components={components} caching={caching}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_serial_pool_preserves_stats_and_trace() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let pool = pdb_par::Pool::new(1);
        let seq = Dpll::new(&cnf, vec![0.5; 4], opts.clone()).run();
        let par = run_parallel(&cnf, &[0.5; 4], opts, &pool);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(
            par.trace.as_ref().map(Trace::reachable_size),
            seq.trace.as_ref().map(Trace::reachable_size)
        );
        assert_eq!(par.probability.to_bits(), seq.probability.to_bits());
    }

    #[test]
    fn run_parallel_respects_max_decisions() {
        let mut clauses = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(i),
                    Lit::pos(6 + i * 6 + j),
                    Lit::neg(42 + j),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 48);
        let opts = DpllOptions {
            max_decisions: 3,
            ..Default::default()
        };
        let pool = pdb_par::Pool::new(4);
        let result = run_parallel(&cnf, &[0.5; 48], opts, &pool);
        assert!(result.aborted);
        assert!(result.probability.is_nan());
    }

    #[test]
    fn model_counting_via_half_probabilities() {
        // #F for F = (x0 ∨ x1) ∧ (x1 ∨ x2): brute force says 4 models... let
        // us verify against the enumerator rather than hand-counting.
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(1), Lit::pos(2)]),
            ],
            3,
        );
        let expected = brute::cnf_model_count(&cnf) as f64;
        let result = Dpll::new(&cnf, vec![0.5; 3], DpllOptions::default()).run();
        assert_close(result.probability * 8.0, expected, 1e-12);
    }
}
