//! A DPLL-style weighted model counter with caching and components.
//!
//! This is the grounded-inference engine of §7: full backtracking search
//! using Shannon expansion (rule (11)) and the *components* rule (rule (12)),
//! with component caching in the style of Cachet/sharpSAT. Unit clauses are
//! branched first (unit propagation as a degenerate Shannon step), so the
//! recorded trace stays a pure decision structure.
//!
//! Following Huang–Darwiche, the **trace** of a run is a knowledge-compilation
//! circuit:
//! * caching + fixed variable order ⇒ an OBDD,
//! * caching, free order, no components ⇒ an FBDD,
//! * caching + components ⇒ a decision-DNNF.
//!
//! The trace is recorded as a [`Trace`] DAG (cache hits create sharing);
//! `pdb-compile` re-exports it as a decision-DNNF circuit, and the Theorem 7.1
//! experiments measure its size.
//!
//! ## The de-allocated hot path
//!
//! Clause storage is **interned once** per run: working sets are
//! `Vec<Arc<Clause>>`, so conditioning shares every untouched clause by
//! reference-count bump instead of deep-cloning it per branch (and
//! [`run_parallel`] hands the interned root set to its forks without the
//! former per-branch `clauses.clone()`). Component-cache probes compute a
//! cheap commutative 64-bit **prefilter hash** first; the canonical
//! `Vec<i32>` key is materialized — into a reusable scratch buffer, not a
//! fresh allocation — only when a bucket with that hash already exists,
//! and is allocated only when a new entry is actually stored. The
//! [`clone_stats`] counters make the "zero per-branch clause clones"
//! property observable (asserted by `e15_kernel`).

use pdb_lineage::{Clause, Cnf};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for the counter (each maps to a §7 concept).
#[derive(Clone, Debug)]
pub struct DpllOptions {
    /// Apply the components rule (12). Off ⇒ FBDD-shaped traces.
    pub components: bool,
    /// Cache component results. Off ⇒ the trace is a tree (no sharing).
    pub caching: bool,
    /// Record the trace DAG.
    pub record_trace: bool,
    /// Fixed variable order (OBDD-shaped traces when components are off).
    /// Variables not listed are ordered after listed ones, by index.
    pub var_order: Option<Vec<u32>>,
    /// Abort after this many decision nodes (0 = unlimited); exponential
    /// instances are the *point* of some experiments, so callers can bound
    /// the blow-up and detect it.
    pub max_decisions: u64,
}

impl Default for DpllOptions {
    fn default() -> DpllOptions {
        DpllOptions {
            components: true,
            caching: true,
            record_trace: false,
            var_order: None,
            max_decisions: 0,
        }
    }
}

/// Counters describing a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DpllStats {
    /// Shannon branches taken (unit propagations included).
    pub decisions: u64,
    /// Component cache hits.
    pub cache_hits: u64,
    /// Component cache misses (entries stored).
    pub cache_misses: u64,
    /// Number of times a formula split into ≥ 2 components.
    pub component_splits: u64,
    /// Maximum recursion depth reached.
    pub max_depth: u64,
}

// ---------------------------------------------------------------------------
// Clause-storage accounting
// ---------------------------------------------------------------------------

/// Deep `Clause` copies taken when interning a CNF at the start of a run
/// (one per input clause — the only place whole clauses are copied).
static INTERNED_CLAUSES: AtomicU64 = AtomicU64::new(0);
/// Untouched clauses carried into a branch by `Arc` reference-count bump.
static SHARED_CLAUSES: AtomicU64 = AtomicU64::new(0);
/// New (shorter) clauses allocated because conditioning removed a literal —
/// inherent to Shannon expansion, not a copy of an existing clause.
static REDUCED_CLAUSES: AtomicU64 = AtomicU64::new(0);
/// Whole-clause deep copies taken **per branch** — the pre-kernel hot-path
/// allocation. No remaining code path increments this; the counter exists
/// so tests and `e15_kernel` can assert it stays zero.
static CLONED_CLAUSES: AtomicU64 = AtomicU64::new(0);

/// Process-global clause-storage counters (cumulative across runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CloneStats {
    /// Deep copies at interning time (run setup; one per input clause).
    pub interned: u64,
    /// Untouched clauses shared into branches via `Arc` (no allocation).
    pub shared: u64,
    /// Shorter clauses allocated by literal removal during conditioning.
    pub reduced: u64,
    /// Per-branch whole-clause deep copies. Stays 0: the clone sites were
    /// removed when clause storage was interned.
    pub cloned: u64,
}

/// Reads the cumulative clause-storage counters.
pub fn clone_stats() -> CloneStats {
    CloneStats {
        interned: INTERNED_CLAUSES.load(Ordering::Relaxed),
        shared: SHARED_CLAUSES.load(Ordering::Relaxed),
        reduced: REDUCED_CLAUSES.load(Ordering::Relaxed),
        cloned: CLONED_CLAUSES.load(Ordering::Relaxed),
    }
}

/// Per-run clause-storage tally, accumulated locally (no atomic traffic in
/// the hot loop) and flushed to the globals when a run or fork finishes.
#[derive(Clone, Copy, Debug, Default)]
struct CloneTally {
    shared: u64,
    reduced: u64,
}

fn flush_tally(t: &CloneTally) {
    if t.shared > 0 {
        SHARED_CLAUSES.fetch_add(t.shared, Ordering::Relaxed);
    }
    if t.reduced > 0 {
        REDUCED_CLAUSES.fetch_add(t.reduced, Ordering::Relaxed);
    }
}

/// Interns a CNF's clauses for a run: the single place whole clauses are
/// deep-copied. Every branch afterwards shares them through the `Arc`s.
fn intern(cnf: &Cnf) -> Vec<Arc<Clause>> {
    INTERNED_CLAUSES.fetch_add(cnf.clauses.len() as u64, Ordering::Relaxed);
    cnf.clauses.iter().map(|c| Arc::new(c.clone())).collect()
}

/// Identifier of a trace node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceNodeId(pub u32);

/// One node of the recorded trace DAG.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceNode {
    /// The constant-true leaf.
    True,
    /// The constant-false leaf.
    False,
    /// A Shannon decision on `var`.
    Decision {
        /// The branched variable.
        var: u32,
        /// Subtrace under `var = 1`.
        hi: TraceNodeId,
        /// Subtrace under `var = 0`.
        lo: TraceNodeId,
    },
    /// An independent-∧ node (component split).
    And {
        /// The independent subtraces.
        children: Vec<TraceNodeId>,
    },
}

/// The trace DAG of a DPLL run (a decision-DNNF per Huang–Darwiche).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    nodes: Vec<TraceNode>,
    root: Option<TraceNodeId>,
}

impl Trace {
    const TRUE: TraceNodeId = TraceNodeId(0);
    const FALSE: TraceNodeId = TraceNodeId(1);

    fn new() -> Trace {
        Trace {
            nodes: vec![TraceNode::True, TraceNode::False],
            root: None,
        }
    }

    fn push(&mut self, node: TraceNode) -> TraceNodeId {
        let id = TraceNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// The root node id.
    pub fn root(&self) -> TraceNodeId {
        self.root.expect("trace has a root after a completed run")
    }

    /// The node behind an id.
    pub fn node(&self, id: TraceNodeId) -> &TraceNode {
        &self.nodes[id.0 as usize]
    }

    /// All nodes (index = id).
    pub fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    /// Number of nodes *reachable from the root* — the size measure used in
    /// the Theorem 7.1 experiments.
    pub fn reachable_size(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            count += 1;
            match &self.nodes[id.0 as usize] {
                TraceNode::True | TraceNode::False => {}
                TraceNode::Decision { hi, lo, .. } => {
                    stack.push(*hi);
                    stack.push(*lo);
                }
                TraceNode::And { children } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// Number of decision nodes reachable from the root.
    pub fn decision_count(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            match &self.nodes[id.0 as usize] {
                TraceNode::True | TraceNode::False => {}
                TraceNode::Decision { hi, lo, .. } => {
                    count += 1;
                    stack.push(*hi);
                    stack.push(*lo);
                }
                TraceNode::And { children } => stack.extend(children.iter().copied()),
            }
        }
        count
    }

    /// Evaluates the trace as a circuit on an assignment (for validation:
    /// the trace must compute exactly the counted formula).
    pub fn eval(&self, assignment: &dyn Fn(u32) -> bool) -> bool {
        fn go(t: &Trace, id: TraceNodeId, a: &dyn Fn(u32) -> bool) -> bool {
            match t.node(id) {
                TraceNode::True => true,
                TraceNode::False => false,
                TraceNode::Decision { var, hi, lo } => {
                    if a(*var) {
                        go(t, *hi, a)
                    } else {
                        go(t, *lo, a)
                    }
                }
                TraceNode::And { children } => children.iter().all(|c| go(t, *c, a)),
            }
        }
        go(self, self.root(), assignment)
    }
}

/// The outcome of a run.
#[derive(Clone, Debug)]
pub struct DpllResult {
    /// The weighted count: `p(F)` under the given per-variable probabilities.
    pub probability: f64,
    /// Run statistics.
    pub stats: DpllStats,
    /// The recorded trace, when requested.
    pub trace: Option<Trace>,
    /// True when `max_decisions` aborted the run (probability is invalid).
    pub aborted: bool,
}

/// Sequential component cache: buckets of `(exact key, value)` pairs keyed
/// by the commutative prefilter hash. A probe whose hash has no bucket
/// skips key materialization entirely; the exact comparison backs the
/// (rare) hash collisions.
type SeqCache = HashMap<u64, Vec<(Vec<i32>, (f64, TraceNodeId))>>;

/// The counter itself. Create with [`Dpll::new`], run with [`Dpll::run`].
pub struct Dpll {
    clauses: Vec<Arc<Clause>>,
    probs: Vec<f64>,
    options: DpllOptions,
    order_rank: Vec<u32>,
    stats: DpllStats,
    trace: Trace,
    cache: SeqCache,
    /// Reusable per-variable occurrence buffer for [`Dpll::pick_var`]
    /// (all-zero between calls), replacing a per-call `HashMap`.
    counts: Vec<u32>,
    /// Reusable clause-index sort buffer for [`serialize_into`].
    sort_scratch: Vec<u32>,
    /// Reusable canonical-key buffer: cache probes serialize into this
    /// instead of allocating a fresh `Vec<i32>` per probe.
    key_scratch: Vec<i32>,
    tally: CloneTally,
    aborted: bool,
}

impl Dpll {
    /// Prepares a counter for `cnf` with per-variable probabilities
    /// (`probs.len() == cnf.num_vars`; Tseitin auxiliaries should get 1/2 and
    /// the caller corrects by `2^aux` — see `pdb-wmc::prob`).
    pub fn new(cnf: &Cnf, probs: Vec<f64>, options: DpllOptions) -> Dpll {
        assert_eq!(probs.len() as u32, cnf.num_vars, "one probability per var");
        let mut order_rank = vec![u32::MAX; cnf.num_vars as usize];
        if let Some(order) = &options.var_order {
            for (rank, &v) in order.iter().enumerate() {
                if (v as usize) < order_rank.len() {
                    order_rank[v as usize] = rank as u32;
                }
            }
        }
        Dpll {
            clauses: intern(cnf),
            probs,
            options,
            order_rank,
            stats: DpllStats::default(),
            trace: Trace::new(),
            cache: HashMap::new(),
            counts: vec![0; cnf.num_vars as usize],
            sort_scratch: Vec::new(),
            key_scratch: Vec::new(),
            tally: CloneTally::default(),
            aborted: false,
        }
    }

    /// Runs the counter.
    pub fn run(mut self) -> DpllResult {
        let clauses = std::mem::take(&mut self.clauses);
        let (p, node) = self.solve(clauses, 0);
        self.trace.root = Some(node);
        flush_tally(&self.tally);
        DpllResult {
            probability: if self.aborted { f64::NAN } else { p },
            stats: self.stats,
            trace: if self.options.record_trace {
                Some(self.trace)
            } else {
                None
            },
            aborted: self.aborted,
        }
    }

    /// Probes the cache: on a prefilter-hash bucket, materializes the
    /// canonical key into the reusable scratch and compares exactly.
    fn cache_probe(&mut self, h: u64, clauses: &[Arc<Clause>]) -> Option<(f64, TraceNodeId)> {
        let bucket = self.cache.get(&h)?;
        serialize_into(clauses, &mut self.sort_scratch, &mut self.key_scratch);
        bucket
            .iter()
            .find(|(k, _)| *k == self.key_scratch)
            .map(|&(_, v)| v)
    }

    /// Stores a solved component. The canonical key is (re)built here —
    /// the scratch may have been overwritten by the recursive solves — and
    /// this is the only point a key is allocated.
    fn cache_store(&mut self, h: u64, clauses: &[Arc<Clause>], value: (f64, TraceNodeId)) {
        serialize_into(clauses, &mut self.sort_scratch, &mut self.key_scratch);
        let key = self.key_scratch.clone();
        self.cache.entry(h).or_default().push((key, value));
        self.stats.cache_misses += 1;
    }

    fn solve(&mut self, clauses: Vec<Arc<Clause>>, depth: u64) -> (f64, TraceNodeId) {
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.aborted {
            return (f64::NAN, Trace::TRUE);
        }
        if clauses.is_empty() {
            return (1.0, Trace::TRUE);
        }
        if clauses.iter().any(|c| c.is_empty()) {
            return (0.0, Trace::FALSE);
        }
        // Cache lookup: prefilter hash first, exact key only on a bucket.
        let hash = if self.options.caching {
            Some(prefilter_hash(&clauses))
        } else {
            None
        };
        if let Some(h) = hash {
            if let Some((p, node)) = self.cache_probe(h, &clauses) {
                self.stats.cache_hits += 1;
                return (p, node);
            }
        }
        // Component decomposition.
        if self.options.components {
            let comps = split_components(&clauses, &mut self.tally);
            if comps.len() > 1 {
                self.stats.component_splits += 1;
                let mut p = 1.0;
                let mut children = Vec::with_capacity(comps.len());
                for comp in comps {
                    let (cp, cnode) = self.solve(comp, depth + 1);
                    p *= cp;
                    children.push(cnode);
                }
                let node = if self.options.record_trace {
                    self.trace.push(TraceNode::And { children })
                } else {
                    Trace::TRUE
                };
                if let Some(h) = hash {
                    self.cache_store(h, &clauses, (p, node));
                }
                return (p, node);
            }
        }
        // Pick the branch variable: a unit literal's variable if any
        // (unit propagation as a Shannon step), else the heuristic choice.
        let var = match clauses.iter().find(|c| c.lits().len() == 1) {
            Some(unit) => unit.lits()[0].var(),
            None => self.pick_var(&clauses),
        };
        self.stats.decisions += 1;
        if self.options.max_decisions > 0 && self.stats.decisions > self.options.max_decisions {
            self.aborted = true;
            return (f64::NAN, Trace::TRUE);
        }
        let p = self.probs[var as usize];
        let hi_set = condition(&clauses, var, true, &mut self.tally);
        let (hi_p, hi_node) = self.solve(hi_set, depth + 1);
        let lo_set = condition(&clauses, var, false, &mut self.tally);
        let (lo_p, lo_node) = self.solve(lo_set, depth + 1);
        let total = p * hi_p + (1.0 - p) * lo_p;
        let node = if self.options.record_trace {
            self.trace.push(TraceNode::Decision {
                var,
                hi: hi_node,
                lo: lo_node,
            })
        } else {
            Trace::TRUE
        };
        if let Some(h) = hash {
            self.cache_store(h, &clauses, (total, node));
        }
        (total, node)
    }

    /// Branch-variable heuristic: lowest fixed-order rank if an order was
    /// given, otherwise the most frequently occurring variable.
    fn pick_var(&mut self, clauses: &[Arc<Clause>]) -> u32 {
        if self.options.var_order.is_some() {
            lowest_rank_var(clauses, &self.order_rank)
        } else {
            most_frequent_var(clauses, &mut self.counts)
        }
    }
}

/// The variable with the lowest `(rank, index)` among those occurring in
/// `clauses` (fixed-order branching).
fn lowest_rank_var(clauses: &[Arc<Clause>], order_rank: &[u32]) -> u32 {
    let mut best = u32::MAX;
    let mut best_rank = (u32::MAX, u32::MAX);
    for c in clauses {
        for l in c.lits() {
            let v = l.var();
            let rank = (order_rank[v as usize], v);
            if rank < best_rank {
                best_rank = rank;
                best = v;
            }
        }
    }
    best
}

/// The most frequently occurring variable, breaking ties toward the lowest
/// index — the same choice `max_by_key` over `(count, Reverse(var))` made,
/// but allocation-free. `counts` must be all-zero on entry (one slot per
/// variable) and is zeroed again before returning.
fn most_frequent_var(clauses: &[Arc<Clause>], counts: &mut [u32]) -> u32 {
    for c in clauses {
        for l in c.lits() {
            counts[l.var() as usize] += 1;
        }
    }
    let mut best = u32::MAX;
    let mut best_count = 0u32;
    for c in clauses {
        for l in c.lits() {
            let v = l.var();
            let n = counts[v as usize];
            if n > best_count || (n == best_count && v < best) {
                best_count = n;
                best = v;
            }
        }
    }
    for c in clauses {
        for l in c.lits() {
            counts[l.var() as usize] = 0;
        }
    }
    debug_assert!(best != u32::MAX, "non-empty clauses have variables");
    best
}

/// Lock-striped component cache for [`run_parallel`]: prefilter hashes pick
/// a shard, so concurrent branches contend only when they touch the same
/// stripe; inside a shard, buckets of `(exact key, value)` pairs back the
/// hash with an exact comparison. Values are probabilities only — parallel
/// runs never record traces.
struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
}

/// One cache shard: prefilter hash → buckets of `(exact key, probability)`.
type Shard = HashMap<u64, Vec<(Vec<i32>, f64)>>;

impl ShardedCache {
    fn new(shards: usize) -> ShardedCache {
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(&self, h: u64) -> usize {
        // The prefilter hash is already well mixed; fold the high bits in
        // so shard choice is not just the low bits of the clause hashes.
        ((h ^ (h >> 32)) % self.shards.len() as u64) as usize
    }

    /// Probes under the shard lock. On a prefilter miss (no bucket for
    /// `h`) the canonical key is **never materialized** — the fast path
    /// the sharded cache exists for; on a candidate bucket the key is
    /// serialized into the caller's reusable scratch and compared exactly.
    fn get(
        &self,
        h: u64,
        clauses: &[Arc<Clause>],
        sort_scratch: &mut Vec<u32>,
        key_scratch: &mut Vec<i32>,
    ) -> Option<f64> {
        let map = self.shards[self.shard_of(h)].lock().unwrap();
        let bucket = map.get(&h)?;
        serialize_into(clauses, sort_scratch, key_scratch);
        bucket
            .iter()
            .find(|(k, _)| k == key_scratch)
            .map(|&(_, p)| p)
    }

    fn insert(
        &self,
        h: u64,
        clauses: &[Arc<Clause>],
        sort_scratch: &mut Vec<u32>,
        key_scratch: &mut Vec<i32>,
        p: f64,
    ) {
        serialize_into(clauses, sort_scratch, key_scratch);
        let mut map = self.shards[self.shard_of(h)].lock().unwrap();
        let bucket = map.entry(h).or_default();
        // Two branches may race to solve the same component; the values
        // are deterministic, so keep the first entry and drop the echo.
        if !bucket.iter().any(|(k, _)| k == key_scratch) {
            bucket.push((key_scratch.clone(), p));
        }
    }
}

/// Shared state of one [`run_parallel`] invocation.
struct ParCtx<'a> {
    probs: &'a [f64],
    options: &'a DpllOptions,
    order_rank: &'a [u32],
    pool: &'a pdb_par::Pool,
    cache: ShardedCache,
    decisions: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    component_splits: AtomicU64,
    max_depth: AtomicU64,
    aborted: AtomicBool,
}

/// Per-task scratch space for [`par_solve`]: forks get a fresh one, the
/// sequential tail under a fork reuses its task's buffers.
struct Scratch {
    counts: Vec<u32>,
    sort: Vec<u32>,
    key: Vec<i32>,
    tally: CloneTally,
}

impl Scratch {
    fn new(num_vars: usize) -> Scratch {
        Scratch {
            counts: vec![0; num_vars],
            sort: Vec::new(),
            key: Vec::new(),
            tally: CloneTally::default(),
        }
    }
}

/// Fork parallel work only this close to the root: deeper subproblems are
/// small and task overhead would dominate.
const PAR_DEPTH: u64 = 4;

/// Counts `cnf` on `pool`, running independent components (and the two
/// Shannon branches) in parallel at shallow depths over a lock-striped
/// component cache. The clause set is interned **once** and shared into
/// every fork through `Arc`s — no per-branch clause cloning.
///
/// The returned probability is bit-identical to [`Dpll::run`]: subproblem
/// values do not depend on execution order (cache entries equal what
/// recomputation would produce), and every floating-point combination —
/// the left-to-right component product and `p·hi + (1−p)·lo` — is evaluated
/// in the same order as the sequential code. With a pool of size 1, or when
/// a trace is requested, this *is* the sequential counter, trace and stats
/// included. On larger pools `stats.decisions` and the cache counters can
/// differ from the sequential run (concurrent branches race to the cache),
/// so `max_decisions` budgets are only approximate there — abort detection
/// itself remains reliable.
pub fn run_parallel(
    cnf: &Cnf,
    probs: &[f64],
    options: DpllOptions,
    pool: &pdb_par::Pool,
) -> DpllResult {
    if pool.threads() == 1 || options.record_trace {
        return Dpll::new(cnf, probs.to_vec(), options).run();
    }
    assert_eq!(probs.len() as u32, cnf.num_vars, "one probability per var");
    let mut order_rank = vec![u32::MAX; cnf.num_vars as usize];
    if let Some(order) = &options.var_order {
        for (rank, &v) in order.iter().enumerate() {
            if (v as usize) < order_rank.len() {
                order_rank[v as usize] = rank as u32;
            }
        }
    }
    let ctx = ParCtx {
        probs,
        options: &options,
        order_rank: &order_rank,
        pool,
        cache: ShardedCache::new(16),
        decisions: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        component_splits: AtomicU64::new(0),
        max_depth: AtomicU64::new(0),
        aborted: AtomicBool::new(false),
    };
    let mut scratch = Scratch::new(probs.len());
    let p = par_solve(&ctx, intern(cnf), 0, &mut scratch);
    flush_tally(&scratch.tally);
    let aborted = ctx.aborted.load(Ordering::Acquire);
    DpllResult {
        probability: if aborted { f64::NAN } else { p },
        stats: DpllStats {
            decisions: ctx.decisions.load(Ordering::Relaxed),
            cache_hits: ctx.cache_hits.load(Ordering::Relaxed),
            cache_misses: ctx.cache_misses.load(Ordering::Relaxed),
            component_splits: ctx.component_splits.load(Ordering::Relaxed),
            max_depth: ctx.max_depth.load(Ordering::Relaxed),
        },
        trace: None,
        aborted,
    }
}

/// Runs `f` in a forked task with its own scratch, flushing the fork's
/// clause tally before the task ends.
fn forked<R>(num_vars: usize, f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut scratch = Scratch::new(num_vars);
    let r = f(&mut scratch);
    flush_tally(&scratch.tally);
    r
}

fn par_solve(ctx: &ParCtx<'_>, clauses: Vec<Arc<Clause>>, depth: u64, s: &mut Scratch) -> f64 {
    ctx.max_depth.fetch_max(depth, Ordering::Relaxed);
    if ctx.aborted.load(Ordering::Relaxed) {
        return f64::NAN;
    }
    if clauses.is_empty() {
        return 1.0;
    }
    if clauses.iter().any(|c| c.is_empty()) {
        return 0.0;
    }
    let hash = ctx.options.caching.then(|| prefilter_hash(&clauses));
    if let Some(h) = hash {
        if let Some(p) = ctx.cache.get(h, &clauses, &mut s.sort, &mut s.key) {
            ctx.cache_hits.fetch_add(1, Ordering::Relaxed);
            return p;
        }
    }
    let fork = depth < PAR_DEPTH;
    if ctx.options.components {
        let comps = split_components(&clauses, &mut s.tally);
        if comps.len() > 1 {
            ctx.component_splits.fetch_add(1, Ordering::Relaxed);
            // Multiply in component order (it is deterministic — components
            // are sorted by serialization) to match the sequential fold.
            let p = if fork {
                ctx.pool
                    .parallel_map(comps, |comp| {
                        forked(ctx.probs.len(), |local| {
                            par_solve(ctx, comp, depth + 1, local)
                        })
                    })
                    .into_iter()
                    .product()
            } else {
                let mut p = 1.0;
                for comp in comps {
                    p *= par_solve(ctx, comp, depth + 1, s);
                }
                p
            };
            if let Some(h) = hash {
                ctx.cache.insert(h, &clauses, &mut s.sort, &mut s.key, p);
                ctx.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
            return p;
        }
    }
    let var = match clauses.iter().find(|c| c.lits().len() == 1) {
        Some(unit) => unit.lits()[0].var(),
        None if ctx.options.var_order.is_some() => lowest_rank_var(&clauses, ctx.order_rank),
        None => most_frequent_var(&clauses, &mut s.counts),
    };
    let decisions = ctx.decisions.fetch_add(1, Ordering::Relaxed) + 1;
    if ctx.options.max_decisions > 0 && decisions > ctx.options.max_decisions {
        ctx.aborted.store(true, Ordering::Release);
        return f64::NAN;
    }
    let p = ctx.probs[var as usize];
    let (hi, lo) = if fork {
        let (hi_set, lo_set) = {
            let hi_set = condition(&clauses, var, true, &mut s.tally);
            let lo_set = condition(&clauses, var, false, &mut s.tally);
            (hi_set, lo_set)
        };
        ctx.pool.join(
            || {
                forked(ctx.probs.len(), |local| {
                    par_solve(ctx, hi_set, depth + 1, local)
                })
            },
            || {
                forked(ctx.probs.len(), |local| {
                    par_solve(ctx, lo_set, depth + 1, local)
                })
            },
        )
    } else {
        let hi_set = condition(&clauses, var, true, &mut s.tally);
        let hi = par_solve(ctx, hi_set, depth + 1, s);
        let lo_set = condition(&clauses, var, false, &mut s.tally);
        let lo = par_solve(ctx, lo_set, depth + 1, s);
        (hi, lo)
    };
    let total = p * hi + (1.0 - p) * lo;
    if let Some(h) = hash {
        ctx.cache
            .insert(h, &clauses, &mut s.sort, &mut s.key, total);
        ctx.cache_misses.fetch_add(1, Ordering::Relaxed);
    }
    total
}

/// Conditions the clause set on `var = value`: satisfied clauses vanish,
/// falsified literals are removed. Untouched clauses are **shared** into
/// the branch by `Arc` clone (a reference-count bump, not a copy); only
/// clauses that actually lose a literal allocate.
fn condition(
    clauses: &[Arc<Clause>],
    var: u32,
    value: bool,
    tally: &mut CloneTally,
) -> Vec<Arc<Clause>> {
    let mut out = Vec::with_capacity(clauses.len());
    for c in clauses {
        let mut touched = false;
        let mut satisfied = false;
        for l in c.lits() {
            if l.var() == var {
                touched = true;
                if l.satisfied_by(value) {
                    satisfied = true;
                    break;
                }
            }
        }
        if satisfied {
            continue;
        }
        if touched {
            tally.reduced += 1;
            out.push(Arc::new(Clause::new(
                c.lits()
                    .iter()
                    .filter(|l| l.var() != var)
                    .copied()
                    .collect(),
            )));
        } else {
            tally.shared += 1;
            out.push(Arc::clone(c));
        }
    }
    out
}

/// Splits a clause set into variable-disjoint components (rule (12)),
/// sharing every clause into its component via `Arc`. Components are
/// sorted by their canonical serialization — the order the sequential
/// fold multiplies them in — with each key computed **once** (the former
/// `sort_by_key` re-serialized per comparison).
fn split_components(clauses: &[Arc<Clause>], tally: &mut CloneTally) -> Vec<Vec<Arc<Clause>>> {
    // Union-find over clause indices, keyed by shared variables.
    let n = clauses.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    let mut owner: HashMap<u32, usize> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        for l in c.lits() {
            match owner.get(&l.var()) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(l.var(), i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<Arc<Clause>>> = HashMap::new();
    for (i, c) in clauses.iter().enumerate() {
        tally.shared += 1;
        groups
            .entry(find(&mut parent, i))
            .or_default()
            .push(Arc::clone(c));
    }
    let mut keyed: Vec<(Vec<i32>, Vec<Arc<Clause>>)> = groups
        .into_values()
        .map(|g| {
            let mut sort = Vec::new();
            let mut key = Vec::new();
            serialize_into(&g, &mut sort, &mut key);
            (key, g)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    keyed.into_iter().map(|(_, g)| g).collect()
}

/// Commutative 64-bit prefilter over a clause set: per-clause FNV-1a over
/// the literal codes, avalanched, then combined order-independently
/// (wrapping add) — so the hash needs **no sort and no allocation**, while
/// still matching whenever the canonical serializations match. Collisions
/// are resolved by the exact key comparison behind it.
fn prefilter_hash(clauses: &[Arc<Clause>]) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64 ^ (clauses.len() as u64);
    for c in clauses {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for l in c.lits() {
            let v = l.var() as i64 + 1;
            let code = if l.is_pos() { v } else { -v } as u64;
            h = (h ^ code).wrapping_mul(0x0000_0100_0000_01B3);
        }
        // splitmix64 avalanche so the commutative combine mixes well.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = acc.wrapping_add(z ^ (z >> 31));
    }
    acc
}

/// Canonical serialization of a clause set into a reusable buffer (the
/// exact cache key): clauses in sorted order, each literal as `±(var+1)`,
/// `0` terminating every clause. `sort_scratch` holds clause indices so no
/// per-call allocation survives warm-up.
fn serialize_into(clauses: &[Arc<Clause>], sort_scratch: &mut Vec<u32>, out: &mut Vec<i32>) {
    sort_scratch.clear();
    sort_scratch.extend(0..clauses.len() as u32);
    sort_scratch.sort_by(|&a, &b| clauses[a as usize].cmp(&clauses[b as usize]));
    out.clear();
    out.reserve(clauses.len() * 4);
    for &i in sort_scratch.iter() {
        for l in clauses[i as usize].lits() {
            let v = l.var() as i32 + 1;
            out.push(if l.is_pos() { v } else { -v });
        }
        out.push(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::TupleId;
    use pdb_lineage::{BoolExpr, Lit};
    use pdb_num::assert_close;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    fn check_against_brute(expr: &BoolExpr, probs: &[f64], options: DpllOptions) {
        // Count ¬expr via CNF and compare 1 − p.
        let cnf = Cnf::from_negated_dnf(expr, probs.len() as u32);
        let expected = 1.0 - brute::expr_probability(expr, probs);
        let result = Dpll::new(&cnf, probs.to_vec(), options).run();
        assert!(!result.aborted);
        assert_close(result.probability, expected, 1e-10);
    }

    #[test]
    fn counts_simple_dnf() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let probs = [0.3, 0.6, 0.2];
        check_against_brute(&f, &probs, DpllOptions::default());
    }

    #[test]
    fn all_option_combinations_agree() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(1), v(2)]),
            BoolExpr::and_all([v(3), v(4)]),
        ]);
        let probs = [0.1, 0.5, 0.9, 0.3, 0.7];
        for components in [false, true] {
            for caching in [false, true] {
                let opts = DpllOptions {
                    components,
                    caching,
                    record_trace: true,
                    ..Default::default()
                };
                check_against_brute(&f, &probs, opts);
            }
        }
    }

    #[test]
    fn trace_computes_the_formula() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 4], opts).run();
        let trace = result.trace.unwrap();
        // The trace computes ¬f (we counted the negated DNF).
        for mask in 0u32..16 {
            let a = |var: u32| mask >> var & 1 == 1;
            assert_eq!(trace.eval(&a), !f.eval(&|t| a(t.0)), "mask={mask}");
        }
        assert!(trace.reachable_size() > 2);
    }

    #[test]
    fn components_rule_fires_on_disjoint_parts() {
        // Two independent blocks: (x0 ∨ x1) ∧ (x2 ∨ x3)
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(2), Lit::pos(3)]),
            ],
            4,
        );
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 4], opts).run();
        assert!(result.stats.component_splits >= 1);
        assert_close(result.probability, 0.75 * 0.75, 1e-12);
    }

    #[test]
    fn unit_propagation_branches_units_first() {
        // x0 ∧ (x0 ∨ x1): unit clause forces x0.
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
            ],
            2,
        );
        let result = Dpll::new(&cnf, vec![0.3, 0.9], DpllOptions::default()).run();
        assert_close(result.probability, 0.3, 1e-12);
    }

    #[test]
    fn caching_reduces_work() {
        // A formula with many identical subproblems: chain of implications.
        let mut clauses = Vec::new();
        for i in 0..10u32 {
            clauses.push(Clause::new(vec![Lit::neg(i), Lit::pos(i + 1)]));
        }
        let cnf = Cnf::new(clauses, 11);
        let with_cache = Dpll::new(
            &cnf,
            vec![0.5; 11],
            DpllOptions {
                caching: true,
                ..Default::default()
            },
        )
        .run();
        let without_cache = Dpll::new(
            &cnf,
            vec![0.5; 11],
            DpllOptions {
                caching: false,
                ..Default::default()
            },
        )
        .run();
        assert_close(with_cache.probability, without_cache.probability, 1e-12);
        assert!(with_cache.stats.decisions <= without_cache.stats.decisions);
    }

    #[test]
    fn fixed_variable_order_is_respected_and_correct() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(2)]),
            BoolExpr::and_all([v(1), v(3)]),
        ]);
        let probs = [0.2, 0.4, 0.6, 0.8];
        let opts = DpllOptions {
            components: false,
            var_order: Some(vec![3, 2, 1, 0]),
            ..Default::default()
        };
        check_against_brute(&f, &probs, opts);
    }

    #[test]
    fn unsatisfiable_counts_zero() {
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0)]),
                Clause::new(vec![Lit::neg(0)]),
            ],
            1,
        );
        let result = Dpll::new(&cnf, vec![0.5], DpllOptions::default()).run();
        assert_close(result.probability, 0.0, 1e-12);
    }

    #[test]
    fn empty_cnf_counts_one() {
        let cnf = Cnf::new(vec![], 3);
        let result = Dpll::new(&cnf, vec![0.5; 3], DpllOptions::default()).run();
        assert_close(result.probability, 1.0, 1e-12);
    }

    #[test]
    fn max_decisions_aborts() {
        // A hard-ish random instance with a tiny budget.
        let mut clauses = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(i),
                    Lit::pos(6 + i * 6 + j),
                    Lit::neg(42 + j),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 48);
        let opts = DpllOptions {
            max_decisions: 3,
            ..Default::default()
        };
        let result = Dpll::new(&cnf, vec![0.5; 48], opts).run();
        assert!(result.aborted);
        assert!(result.probability.is_nan());
    }

    #[test]
    fn run_parallel_matches_sequential_bitwise() {
        // A mix of shapes: chains (cache-friendly), disjoint blocks
        // (component splits), and a dense block (pure Shannon branching).
        let mut clauses = Vec::new();
        for i in 0..8u32 {
            clauses.push(Clause::new(vec![Lit::neg(i), Lit::pos(i + 1)]));
        }
        for b in 0..4u32 {
            let base = 9 + b * 3;
            clauses.push(Clause::new(vec![Lit::pos(base), Lit::pos(base + 1)]));
            clauses.push(Clause::new(vec![Lit::neg(base + 1), Lit::pos(base + 2)]));
        }
        for i in 0..4u32 {
            for j in 0..4u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(21 + i),
                    Lit::pos(25 + j),
                    Lit::neg(21 + (i + j) % 4),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 29);
        let probs: Vec<f64> = (0..29).map(|i| 0.05 + 0.9 * (i as f64 / 28.0)).collect();
        for components in [false, true] {
            for caching in [false, true] {
                let opts = DpllOptions {
                    components,
                    caching,
                    ..Default::default()
                };
                let seq = Dpll::new(&cnf, probs.clone(), opts.clone()).run();
                for threads in [1, 2, 4, 8] {
                    let pool = pdb_par::Pool::new(threads);
                    let par = run_parallel(&cnf, &probs, opts.clone(), &pool);
                    assert!(!par.aborted);
                    assert_eq!(
                        par.probability.to_bits(),
                        seq.probability.to_bits(),
                        "threads={threads} components={components} caching={caching}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_parallel_serial_pool_preserves_stats_and_trace() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1)]),
            BoolExpr::and_all([v(2), v(3)]),
        ]);
        let cnf = Cnf::from_negated_dnf(&f, 4);
        let opts = DpllOptions {
            record_trace: true,
            ..Default::default()
        };
        let pool = pdb_par::Pool::new(1);
        let seq = Dpll::new(&cnf, vec![0.5; 4], opts.clone()).run();
        let par = run_parallel(&cnf, &[0.5; 4], opts, &pool);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(
            par.trace.as_ref().map(Trace::reachable_size),
            seq.trace.as_ref().map(Trace::reachable_size)
        );
        assert_eq!(par.probability.to_bits(), seq.probability.to_bits());
    }

    #[test]
    fn run_parallel_respects_max_decisions() {
        let mut clauses = Vec::new();
        for i in 0..6u32 {
            for j in 0..6u32 {
                clauses.push(Clause::new(vec![
                    Lit::neg(i),
                    Lit::pos(6 + i * 6 + j),
                    Lit::neg(42 + j),
                ]));
            }
        }
        let cnf = Cnf::new(clauses, 48);
        let opts = DpllOptions {
            max_decisions: 3,
            ..Default::default()
        };
        let pool = pdb_par::Pool::new(4);
        let result = run_parallel(&cnf, &[0.5; 48], opts, &pool);
        assert!(result.aborted);
        assert!(result.probability.is_nan());
    }

    #[test]
    fn model_counting_via_half_probabilities() {
        // #F for F = (x0 ∨ x1) ∧ (x1 ∨ x2): brute force says 4 models... let
        // us verify against the enumerator rather than hand-counting.
        let cnf = Cnf::new(
            vec![
                Clause::new(vec![Lit::pos(0), Lit::pos(1)]),
                Clause::new(vec![Lit::pos(1), Lit::pos(2)]),
            ],
            3,
        );
        let expected = brute::cnf_model_count(&cnf) as f64;
        let result = Dpll::new(&cnf, vec![0.5; 3], DpllOptions::default()).run();
        assert_close(result.probability * 8.0, expected, 1e-12);
    }

    #[test]
    fn prefilter_hash_is_order_independent_and_discriminating() {
        let a = Arc::new(Clause::new(vec![Lit::pos(0), Lit::neg(1)]));
        let b = Arc::new(Clause::new(vec![Lit::pos(2)]));
        let c = Arc::new(Clause::new(vec![Lit::neg(3), Lit::pos(4)]));
        let fwd = vec![a.clone(), b.clone(), c.clone()];
        let rev = vec![c.clone(), b.clone(), a.clone()];
        assert_eq!(prefilter_hash(&fwd), prefilter_hash(&rev));
        // Same serialization ⇒ same hash; different sets (almost surely)
        // differ.
        let other = vec![a, b];
        assert_ne!(prefilter_hash(&fwd), prefilter_hash(&other));
    }

    #[test]
    fn serialize_into_matches_canonical_layout() {
        let clauses = vec![
            Arc::new(Clause::new(vec![Lit::pos(2)])),
            Arc::new(Clause::new(vec![Lit::pos(0), Lit::neg(1)])),
        ];
        let mut sort = Vec::new();
        let mut key = Vec::new();
        serialize_into(&clauses, &mut sort, &mut key);
        // Clauses sorted (x0 ∨ ¬x1) < (x2); literals in `Lit` order,
        // encoded ±(var+1), 0-terminated.
        assert_eq!(key, vec![-2, 1, 0, 3, 0]);
        // The buffers are reusable: a second call overwrites cleanly.
        serialize_into(&clauses[..1], &mut sort, &mut key);
        assert_eq!(key, vec![3, 0]);
    }

    #[test]
    fn no_per_branch_clause_clones_sequential_or_parallel() {
        let mut clauses = Vec::new();
        for i in 0..8u32 {
            clauses.push(Clause::new(vec![Lit::neg(i), Lit::pos(i + 1)]));
        }
        for b in 0..3u32 {
            let base = 9 + b * 3;
            clauses.push(Clause::new(vec![Lit::pos(base), Lit::pos(base + 1)]));
        }
        let cnf = Cnf::new(clauses, 18);
        let probs = vec![0.4; 18];
        let before = clone_stats();
        let seq = Dpll::new(&cnf, probs.clone(), DpllOptions::default()).run();
        let pool = pdb_par::Pool::new(4);
        let par = run_parallel(&cnf, &probs, DpllOptions::default(), &pool);
        assert_eq!(seq.probability.to_bits(), par.probability.to_bits());
        let after = clone_stats();
        // Branches shared clauses through the interned storage...
        assert!(after.shared > before.shared, "branches share via Arc");
        // ...interning copied exactly the input clauses, per run...
        assert_eq!(
            after.interned - before.interned,
            2 * cnf.clauses.len() as u64
        );
        // ...and nothing deep-cloned a clause per branch.
        assert_eq!(after.cloned, 0, "per-branch clause clones must stay zero");
    }
}
