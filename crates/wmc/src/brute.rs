//! Brute-force exact probability by full assignment enumeration.
//!
//! `p(F) = Σ_θ⊨F ∏_{θ(Xᵢ)=1} pᵢ ∏_{θ(Xᵢ)=0} (1−pᵢ)` — the appendix's
//! definition, summed over all `2^n` assignments. Serves as ground truth.

use pdb_lineage::{BoolExpr, Cnf};
use pdb_num::KahanSum;

const MAX_VARS: u32 = 30;

/// Exact probability of a Boolean expression; `probs[i]` is `p(Xᵢ)`.
///
/// Enumerates every assignment of the variables `0 … probs.len()−1`
/// (variables not mentioned in `expr` integrate out to a factor of 1 term by
/// term, so only mentioned variables are actually enumerated).
pub fn expr_probability(expr: &BoolExpr, probs: &[f64]) -> f64 {
    let vars: Vec<u32> = expr.vars().into_iter().map(|t| t.0).collect();
    assert!(
        vars.len() as u32 <= MAX_VARS,
        "brute force refuses {} variables (max {MAX_VARS})",
        vars.len()
    );
    let mut total = KahanSum::new();
    for mask in 0u64..(1u64 << vars.len()) {
        let on = |v: u32| -> bool {
            match vars.binary_search(&v) {
                Ok(i) => mask >> i & 1 == 1,
                Err(_) => false,
            }
        };
        if expr.eval(&|id| on(id.0)) {
            let mut w = 1.0;
            for (i, &v) in vars.iter().enumerate() {
                let p = probs[v as usize];
                w *= if mask >> i & 1 == 1 { p } else { 1.0 - p };
            }
            total.add(w);
        }
    }
    total.total()
}

/// Exact probability of a CNF over **all** its variables (including
/// auxiliaries). `probs.len()` must equal `cnf.num_vars`.
pub fn cnf_probability(cnf: &Cnf, probs: &[f64]) -> f64 {
    assert_eq!(probs.len() as u32, cnf.num_vars);
    assert!(
        cnf.num_vars <= MAX_VARS,
        "brute force refuses {} variables (max {MAX_VARS})",
        cnf.num_vars
    );
    let n = cnf.num_vars;
    let mut total = KahanSum::new();
    for mask in 0u64..(1u64 << n) {
        let assignment = |v: u32| mask >> v & 1 == 1;
        if cnf.eval(&assignment) {
            let mut w = 1.0;
            for (v, &p) in probs.iter().enumerate() {
                w *= if mask >> v & 1 == 1 { p } else { 1.0 - p };
            }
            total.add(w);
        }
    }
    total.total()
}

/// Unweighted model count of a CNF (all `2^n` assignments).
pub fn cnf_model_count(cnf: &Cnf) -> u64 {
    assert!(cnf.num_vars <= MAX_VARS);
    (0u64..(1u64 << cnf.num_vars))
        .filter(|mask| cnf.eval(&|v| mask >> v & 1 == 1))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_data::TupleId;
    use pdb_num::assert_close;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    #[test]
    fn single_variable() {
        assert_close(expr_probability(&v(0), &[0.3]), 0.3, 1e-12);
        assert_close(expr_probability(&v(0).negate(), &[0.3]), 0.7, 1e-12);
    }

    #[test]
    fn constants() {
        assert_close(expr_probability(&BoolExpr::TRUE, &[]), 1.0, 1e-12);
        assert_close(expr_probability(&BoolExpr::FALSE, &[0.5]), 0.0, 1e-12);
    }

    #[test]
    fn and_or_of_independent_vars() {
        let f = BoolExpr::and_all([v(0), v(1)]);
        assert_close(expr_probability(&f, &[0.3, 0.5]), 0.15, 1e-12);
        let g = BoolExpr::or_all([v(0), v(1)]);
        assert_close(expr_probability(&g, &[0.3, 0.5]), 1.0 - 0.7 * 0.5, 1e-12);
    }

    #[test]
    fn shared_variable_correlation() {
        // x0 | (x0 & x1) = x0.
        let f = BoolExpr::or_all([v(0), BoolExpr::and_all([v(0), v(1)])]);
        assert_close(expr_probability(&f, &[0.3, 0.9]), 0.3, 1e-12);
    }

    #[test]
    fn unmentioned_variables_do_not_matter() {
        // probs has 5 entries; formula mentions only x4.
        let f = v(4);
        assert_close(expr_probability(&f, &[0.1, 0.2, 0.3, 0.4, 0.5]), 0.5, 1e-12);
    }

    #[test]
    fn appendix_running_example() {
        // F = (X1∨X2)(X1∨X3)(X2∨X3), four models (appendix Fig. 3).
        let f = BoolExpr::and_all([
            BoolExpr::or_all([v(0), v(1)]),
            BoolExpr::or_all([v(0), v(2)]),
            BoolExpr::or_all([v(1), v(2)]),
        ]);
        let p = [0.5, 0.5, 0.5];
        // 4 models out of 8, uniform 1/2 ⇒ 0.5
        assert_close(expr_probability(&f, &p), 0.5, 1e-12);
        // Non-uniform check against the hand-expanded sum.
        let p = [0.2, 0.5, 0.8];
        let expect = {
            // models: 011, 101, 110, 111
            (1.0 - p[0]) * p[1] * p[2]
                + p[0] * (1.0 - p[1]) * p[2]
                + p[0] * p[1] * (1.0 - p[2])
                + p[0] * p[1] * p[2]
        };
        assert_close(expr_probability(&f, &p), expect, 1e-12);
    }

    #[test]
    fn nonstandard_probabilities_work() {
        // p = -0.5: p(x0) + p(!x0) still sums to 1.
        let f = BoolExpr::or_all([v(0), v(0).negate()]);
        assert_close(expr_probability(&f, &[-0.5]), 1.0, 1e-12);
        assert_close(expr_probability(&v(0), &[-0.5]), -0.5, 1e-12);
    }

    #[test]
    fn cnf_probability_matches_expr() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let cnf = Cnf::from_negated_dnf(&f, 3);
        let p = [0.2, 0.6, 0.4];
        assert_close(
            cnf_probability(&cnf, &p),
            1.0 - expr_probability(&f, &p),
            1e-12,
        );
    }

    #[test]
    fn model_count_small() {
        let f = BoolExpr::or_all([v(0), v(1)]);
        let cnf = Cnf::from_expr_direct(&f, 2).unwrap();
        assert_eq!(cnf_model_count(&cnf), 3);
    }
}
