//! The Karp–Luby FPRAS for monotone DNF.
//!
//! When `PQE(Q)` is #P-hard, the classical recourse (§1, §6 discussion) is
//! approximation. For a UCQ the lineage is a monotone DNF
//! `F = T₁ ∨ … ∨ T_m`, and the Karp–Luby estimator gives an unbiased
//! estimate of `p(F)` with relative-error guarantees:
//! sample a term `i` with probability `p(T_i)/U` where `U = Σ_j p(T_j)`,
//! sample a world conditioned on `T_i ⊆ W`, and score 1 iff `i` is the
//! *first* term satisfied by the world; then `p(F) = U · E[score]`.

use pdb_lineage::DnfLineage;
use rand::Rng;

/// An estimate with its standard error.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// The point estimate of `p(F)`.
    pub value: f64,
    /// Standard error of the estimate (≈ 68% confidence half-width).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: u64,
}

/// Runs the Karp–Luby estimator for `samples` rounds.
///
/// `probs[i]` is the probability of tuple variable `i` and must be a
/// standard probability in `[0, 1]`. Terms of the lineage must be non-empty
/// (guaranteed by lineage construction for non-trivial queries).
pub fn estimate(lineage: &DnfLineage, probs: &[f64], samples: u64, rng: &mut impl Rng) -> Estimate {
    if lineage.is_trivially_true() {
        return Estimate {
            value: 1.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    if lineage.is_false() {
        return Estimate {
            value: 0.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    let terms = lineage.terms();
    // Term weights p(T_i) = ∏_{t ∈ T_i} p_t and the union bound U.
    let weights: Vec<f64> = terms
        .iter()
        .map(|t| {
            t.iter()
                .map(|id| {
                    let p = probs[id.index()];
                    debug_assert!(
                        (0.0..=1.0).contains(&p),
                        "Karp–Luby requires standard probabilities"
                    );
                    p
                })
                .product()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return Estimate {
            value: 0.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    // Cumulative distribution for term sampling.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    // Collect the variables relevant to the lineage; all others are
    // irrelevant to term satisfaction.
    let vars: Vec<u32> = lineage.vars().into_iter().map(|t| t.0).collect();
    let mut assignment: Vec<bool> = vec![false; probs.len()];
    let mut hits: u64 = 0;
    for _ in 0..samples {
        // Sample a term index ∝ weight.
        let u: f64 = rng.gen();
        let i = match cdf.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => cdf.len() - 1,
        };
        // Sample a world conditioned on T_i true.
        for &v in &vars {
            assignment[v as usize] = rng.gen_bool(probs[v as usize].clamp(0.0, 1.0));
        }
        for id in &terms[i] {
            assignment[id.index()] = true;
        }
        // Is i the first satisfied term?
        let first = terms
            .iter()
            .position(|t| t.iter().all(|id| assignment[id.index()]))
            .expect("term i itself is satisfied");
        if first == i {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    // Bernoulli standard error, scaled by U.
    let var = mean * (1.0 - mean) / samples as f64;
    Estimate {
        value: total * mean,
        std_error: total * var.sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::generators;
    use pdb_lineage::ucq_dnf_lineage;
    use pdb_logic::parse_ucq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probs_of(db: &pdb_data::TupleDb) -> Vec<f64> {
        db.index().iter().map(|(_, r)| r.prob).collect()
    }

    #[test]
    fn estimates_match_exact_on_small_instance() {
        let mut rng = StdRng::seed_from_u64(11);
        let db = generators::bipartite(3, 0.8, (0.2, 0.8), &mut rng);
        let idx = db.index();
        let u = parse_ucq("R(x), S(x,y), T(y)").unwrap();
        let lin = ucq_dnf_lineage(&u, &db, &idx);
        let probs = probs_of(&db);
        let exact = brute::expr_probability(&lin.to_expr(), &probs);
        let est = estimate(&lin, &probs, 40_000, &mut rng);
        assert!(
            (est.value - exact).abs() < 4.0 * est.std_error.max(0.005),
            "estimate {} vs exact {} (se {})",
            est.value,
            exact,
            est.std_error
        );
    }

    #[test]
    fn trivial_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut db = pdb_data::TupleDb::new();
        db.insert("R", [0], 0.4);
        let idx = db.index();
        // False lineage: no matching tuples.
        let lin = ucq_dnf_lineage(&parse_ucq("Z(x)").unwrap(), &db, &idx);
        let est = estimate(&lin, &[0.4], 100, &mut rng);
        assert_eq!(est.value, 0.0);
        // Single-term lineage: unbiased and exact in expectation.
        let lin2 = ucq_dnf_lineage(&parse_ucq("R(x)").unwrap(), &db, &idx);
        let est2 = estimate(&lin2, &[0.4], 1000, &mut rng);
        // One term: the estimator is deterministic (hit rate 1).
        assert!((est2.value - 0.4).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let db = generators::bipartite(3, 0.5, (0.3, 0.7), &mut rng1);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db, &idx);
        let probs = probs_of(&db);
        let mut rng1b = StdRng::seed_from_u64(99);
        let mut rng2b = StdRng::seed_from_u64(99);
        let db2 = generators::bipartite(3, 0.5, (0.3, 0.7), &mut rng2);
        let idx2 = db2.index();
        let lin2 = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db2, &idx2);
        let e1 = estimate(&lin, &probs, 500, &mut rng1b);
        let e2 = estimate(&lin2, &probs_of(&db2), 500, &mut rng2b);
        assert_eq!(lin.terms().len(), lin2.terms().len());
        assert_eq!(e1.value, e2.value);
    }
}
