//! The Karp–Luby FPRAS for monotone DNF.
//!
//! When `PQE(Q)` is #P-hard, the classical recourse (§1, §6 discussion) is
//! approximation. For a UCQ the lineage is a monotone DNF
//! `F = T₁ ∨ … ∨ T_m`, and the Karp–Luby estimator gives an unbiased
//! estimate of `p(F)` with relative-error guarantees:
//! sample a term `i` with probability `p(T_i)/U` where `U = Σ_j p(T_j)`,
//! sample a world conditioned on `T_i ⊆ W`, and score 1 iff `i` is the
//! *first* term satisfied by the world; then `p(F) = U · E[score]`.

use pdb_kernel::FlatDnf;
use pdb_lineage::DnfLineage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An estimate with its standard error.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// The point estimate of `p(F)`.
    pub value: f64,
    /// Standard error of the estimate (≈ 68% confidence half-width).
    pub std_error: f64,
    /// Number of samples drawn.
    pub samples: u64,
}

/// Precomputed sampling tables shared by every chunk of one estimation run.
struct Prepared {
    /// The union bound `U = Σ_i p(T_i)`.
    total: f64,
    /// Cumulative term-sampling distribution.
    cdf: Vec<f64>,
    /// Variables occurring in the lineage.
    vars: Vec<u32>,
    /// The lineage flattened into contiguous term spans: the per-sample
    /// force-term and first-satisfied scans run over one allocation
    /// instead of chasing `Vec<Vec<TupleId>>` pointers. Term order — which
    /// defines "first" — is exactly the lineage's.
    flat: FlatDnf,
}

/// Computes term weights and the sampling CDF, or short-circuits with the
/// exact answer for trivial lineages.
fn prepare(lineage: &DnfLineage, probs: &[f64]) -> Result<Prepared, Estimate> {
    let trivial = |value: f64| Estimate {
        value,
        std_error: 0.0,
        samples: 0,
    };
    if lineage.is_trivially_true() {
        return Err(trivial(1.0));
    }
    if lineage.is_false() {
        return Err(trivial(0.0));
    }
    let terms = lineage.terms();
    // Term weights p(T_i) = ∏_{t ∈ T_i} p_t and the union bound U.
    let weights: Vec<f64> = terms
        .iter()
        .map(|t| {
            t.iter()
                .map(|id| {
                    let p = probs[id.index()];
                    debug_assert!(
                        (0.0..=1.0).contains(&p),
                        "Karp–Luby requires standard probabilities"
                    );
                    p
                })
                .product()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return Err(trivial(0.0));
    }
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let vars: Vec<u32> = lineage.vars().into_iter().map(|t| t.0).collect();
    let mut flat = FlatDnf::new();
    for t in terms {
        flat.push_term(t.iter().map(|id| id.index() as u32));
    }
    Ok(Prepared {
        total,
        cdf,
        vars,
        flat,
    })
}

/// Draws `samples` Karp–Luby rounds from `rng` and counts the hits
/// (worlds whose first satisfied term is the sampled one).
fn sample_hits(
    prep: &Prepared,
    probs: &[f64],
    samples: u64,
    rng: &mut impl Rng,
    assignment: &mut [bool],
) -> u64 {
    let mut hits = 0u64;
    for _ in 0..samples {
        // Sample a term index ∝ weight.
        let u: f64 = rng.gen();
        let i = match prep.cdf.iter().position(|&c| u <= c) {
            Some(i) => i,
            None => prep.cdf.len() - 1,
        };
        // Sample a world conditioned on T_i true.
        for &v in &prep.vars {
            assignment[v as usize] = rng.gen_bool(probs[v as usize].clamp(0.0, 1.0));
        }
        prep.flat.force_true(i, assignment);
        // Is i the first satisfied term? (The scan over the flat spans
        // visits terms in exactly the order the old nested scan did.)
        let first = prep
            .flat
            .first_satisfied(assignment)
            .expect("term i itself is satisfied");
        if first == i {
            hits += 1;
        }
    }
    hits
}

fn finish(total: f64, hits: u64, samples: u64) -> Estimate {
    let mean = hits as f64 / samples as f64;
    // Bernoulli standard error, scaled by U.
    let var = mean * (1.0 - mean) / samples as f64;
    Estimate {
        value: total * mean,
        std_error: total * var.sqrt(),
        samples,
    }
}

/// Runs the Karp–Luby estimator for `samples` rounds.
///
/// `probs[i]` is the probability of tuple variable `i` and must be a
/// standard probability in `[0, 1]`. Terms of the lineage must be non-empty
/// (guaranteed by lineage construction for non-trivial queries).
pub fn estimate(lineage: &DnfLineage, probs: &[f64], samples: u64, rng: &mut impl Rng) -> Estimate {
    let prep = match prepare(lineage, probs) {
        Ok(prep) => prep,
        Err(trivial) => return trivial,
    };
    let mut assignment: Vec<bool> = vec![false; probs.len()];
    let hits = sample_hits(&prep, probs, samples, rng, &mut assignment);
    finish(prep.total, hits, samples)
}

/// Number of samples per parallel chunk. Fixed so the chunk boundaries —
/// and hence every chunk's RNG stream — do not depend on the pool size.
pub const CHUNK_SAMPLES: u64 = 4096;

/// Derives the RNG seed of chunk `chunk` from the run seed (a splitmix64
/// scramble, so neighbouring chunks get decorrelated streams).
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the Karp–Luby estimator with samples sharded into fixed-size chunks
/// evaluated on `pool`, each chunk seeded from `(seed, chunk_index)`.
///
/// Because chunk boundaries and seeds are functions of `(seed, samples)`
/// only, the estimate is **bit-identical for every pool size** — a serial
/// run and an 8-thread run produce the same value, std error, and hit
/// count. (It differs from [`estimate`] with a single RNG stream under the
/// same seed; the chunked layout is its own deterministic estimator.)
pub fn estimate_chunked(
    lineage: &DnfLineage,
    probs: &[f64],
    samples: u64,
    seed: u64,
    pool: &pdb_par::Pool,
) -> Estimate {
    let prep = match prepare(lineage, probs) {
        Ok(prep) => prep,
        Err(trivial) => return trivial,
    };
    let chunks = samples.div_ceil(CHUNK_SAMPLES);
    let chunk_hits = pool.map_indices(chunks as usize, |c| {
        let c = c as u64;
        let lo = c * CHUNK_SAMPLES;
        let n = CHUNK_SAMPLES.min(samples - lo);
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, c));
        let mut assignment: Vec<bool> = vec![false; probs.len()];
        sample_hits(&prep, probs, n, &mut rng, &mut assignment)
    });
    let hits: u64 = chunk_hits.into_iter().sum();
    finish(prep.total, hits, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::generators;
    use pdb_lineage::ucq_dnf_lineage;
    use pdb_logic::parse_ucq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probs_of(db: &pdb_data::TupleDb) -> Vec<f64> {
        db.index().iter().map(|(_, r)| r.prob).collect()
    }

    #[test]
    fn estimates_match_exact_on_small_instance() {
        let mut rng = StdRng::seed_from_u64(11);
        let db = generators::bipartite(3, 0.8, (0.2, 0.8), &mut rng);
        let idx = db.index();
        let u = parse_ucq("R(x), S(x,y), T(y)").unwrap();
        let lin = ucq_dnf_lineage(&u, &db, &idx);
        let probs = probs_of(&db);
        let exact = brute::expr_probability(&lin.to_expr(), &probs);
        let est = estimate(&lin, &probs, 40_000, &mut rng);
        assert!(
            (est.value - exact).abs() < 4.0 * est.std_error.max(0.005),
            "estimate {} vs exact {} (se {})",
            est.value,
            exact,
            est.std_error
        );
    }

    #[test]
    fn trivial_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut db = pdb_data::TupleDb::new();
        db.insert("R", [0], 0.4);
        let idx = db.index();
        // False lineage: no matching tuples.
        let lin = ucq_dnf_lineage(&parse_ucq("Z(x)").unwrap(), &db, &idx);
        let est = estimate(&lin, &[0.4], 100, &mut rng);
        assert_eq!(est.value, 0.0);
        // Single-term lineage: unbiased and exact in expectation.
        let lin2 = ucq_dnf_lineage(&parse_ucq("R(x)").unwrap(), &db, &idx);
        let est2 = estimate(&lin2, &[0.4], 1000, &mut rng);
        // One term: the estimator is deterministic (hit rate 1).
        assert!((est2.value - 0.4).abs() < 1e-12);
    }

    #[test]
    fn chunked_estimate_is_pool_size_invariant() {
        let mut rng = StdRng::seed_from_u64(23);
        let db = generators::bipartite(4, 0.7, (0.2, 0.8), &mut rng);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db, &idx);
        let probs = probs_of(&db);
        // 2.5 chunks' worth of samples: exercises the partial tail chunk.
        let samples = CHUNK_SAMPLES * 2 + CHUNK_SAMPLES / 2;
        let serial = {
            let pool = pdb_par::Pool::new(1);
            estimate_chunked(&lin, &probs, samples, 77, &pool)
        };
        for threads in [2, 3, 8] {
            let pool = pdb_par::Pool::new(threads);
            let est = estimate_chunked(&lin, &probs, samples, 77, &pool);
            assert_eq!(
                est.value.to_bits(),
                serial.value.to_bits(),
                "threads={threads}"
            );
            assert_eq!(est.std_error.to_bits(), serial.std_error.to_bits());
            assert_eq!(est.samples, serial.samples);
        }
        // And the estimate is still a good one.
        let exact = brute::expr_probability(&lin.to_expr(), &probs);
        assert!(
            (serial.value - exact).abs() < 4.0 * serial.std_error.max(0.005),
            "estimate {} vs exact {} (se {})",
            serial.value,
            exact,
            serial.std_error
        );
    }

    #[test]
    fn chunked_estimate_handles_trivial_lineages() {
        let mut db = pdb_data::TupleDb::new();
        db.insert("R", [0], 0.4);
        let idx = db.index();
        let pool = pdb_par::Pool::new(4);
        let lin = ucq_dnf_lineage(&parse_ucq("Z(x)").unwrap(), &db, &idx);
        assert_eq!(estimate_chunked(&lin, &[0.4], 100, 1, &pool).value, 0.0);
        let lin2 = ucq_dnf_lineage(&parse_ucq("R(x)").unwrap(), &db, &idx);
        let est = estimate_chunked(&lin2, &[0.4], 1000, 1, &pool);
        assert!((est.value - 0.4).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let db = generators::bipartite(3, 0.5, (0.3, 0.7), &mut rng1);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db, &idx);
        let probs = probs_of(&db);
        let mut rng1b = StdRng::seed_from_u64(99);
        let mut rng2b = StdRng::seed_from_u64(99);
        let db2 = generators::bipartite(3, 0.5, (0.3, 0.7), &mut rng2);
        let idx2 = db2.index();
        let lin2 = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db2, &idx2);
        let e1 = estimate(&lin, &probs, 500, &mut rng1b);
        let e2 = estimate(&lin2, &probs_of(&db2), 500, &mut rng2b);
        assert_eq!(lin.terms().len(), lin2.terms().len());
        assert_eq!(e1.value, e2.value);
    }
}
