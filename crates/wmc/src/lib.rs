//! # pdb-wmc — weighted model counting (grounded inference)
//!
//! Grounded inference (§7) computes `p_D(Q)` by model counting over the
//! lineage. This crate implements the counting stack:
//!
//! * [`brute`] — exact enumeration over all assignments (the ground truth for
//!   everything else; capped at 30 variables),
//! * [`dpll`] — a DPLL-style weighted model counter in the Cachet/sharpSAT
//!   tradition: Shannon expansion (rule (11)), connected components
//!   (rule (12)), unit propagation, and component caching. Its recorded
//!   *trace* is a decision-DNNF (Huang–Darwiche; `pdb-compile` converts it),
//!   which is how the Theorem 7.1 experiments measure trace sizes,
//! * [`karp_luby`] — the Karp–Luby FPRAS for monotone DNF lineages, the
//!   classical fallback for #P-hard queries,
//! * [`monte_carlo`] — naive world sampling (unbiased but not an FPRAS;
//!   the ablation baseline that motivates Karp–Luby),
//! * [`prob`] — a convenience front-end dispatching an arbitrary
//!   [`pdb_lineage::BoolExpr`] to the right counter.
//!
//! Probabilities may be non-standard (outside `[0,1]`) throughout; only the
//! sampling-based estimator requires standard values.

pub mod brute;
pub mod dpll;
pub mod karp_luby;
pub mod monte_carlo;
pub mod prob;

pub use dpll::{
    clone_stats, run_parallel, CloneStats, Dpll, DpllOptions, DpllResult, DpllStats, Trace,
    TraceNode, TraceNodeId,
};
pub use prob::{probability_of_expr, probability_of_query};
