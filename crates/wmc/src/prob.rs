//! Front-end: exact probability of an arbitrary lineage formula.
//!
//! Dispatches to the cheapest sound encoding:
//! 1. monotone DNF → count the negation (pure CNF), return `1 − p`;
//! 2. already CNF-shaped → count directly;
//! 3. anything else → Tseitin with neutral auxiliaries (`p = 1/2`, result
//!    corrected by `2^aux` thanks to the unique-extension property).

use crate::dpll::{Dpll, DpllOptions, DpllStats};
use pdb_data::TupleDb;
use pdb_lineage::{BoolExpr, Cnf};
use pdb_logic::Fo;

/// Exact probability of `expr` where `probs[i] = p(Xᵢ)`, via the DPLL
/// counter. Returns the probability and the run statistics.
pub fn probability_of_expr(
    expr: &BoolExpr,
    probs: &[f64],
    options: DpllOptions,
) -> (f64, DpllStats) {
    let n = probs.len() as u32;
    match expr {
        BoolExpr::Const(b) => (if *b { 1.0 } else { 0.0 }, DpllStats::default()),
        _ if expr.is_monotone_dnf() => {
            let cnf = Cnf::from_negated_dnf(expr, n);
            let result = Dpll::new(&cnf, probs.to_vec(), options).run();
            assert!(!result.aborted, "exact counting aborted by decision budget");
            (1.0 - result.probability, result.stats)
        }
        _ => match Cnf::from_expr_direct(expr, n) {
            Some(cnf) => {
                let result = Dpll::new(&cnf, probs.to_vec(), options).run();
                assert!(!result.aborted, "exact counting aborted by decision budget");
                (result.probability, result.stats)
            }
            None => {
                let cnf = Cnf::tseitin(expr, n);
                let aux = cnf.aux_vars();
                let mut all_probs = probs.to_vec();
                all_probs.resize(cnf.num_vars as usize, 0.5);
                let result = Dpll::new(&cnf, all_probs, options).run();
                assert!(!result.aborted, "exact counting aborted by decision budget");
                (result.probability * 2f64.powi(aux as i32), result.stats)
            }
        },
    }
}

/// Grounded inference end-to-end: builds the lineage of `fo` over `db` and
/// counts it. This is the `PQE` path the paper calls *grounded* / intensional
/// (§7), correct for **every** FO sentence but potentially exponential.
pub fn probability_of_query(fo: &Fo, db: &TupleDb) -> f64 {
    let index = db.index();
    let lineage = pdb_lineage::lineage(fo, db, &index);
    let probs: Vec<f64> = index.iter().map(|(_, r)| r.prob).collect();
    probability_of_expr(&lineage, &probs, DpllOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::{generators, TupleId};
    use pdb_logic::parse_fo;
    use pdb_num::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    #[test]
    fn dispatches_dnf() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let probs = [0.3, 0.6, 0.2];
        let (p, _) = probability_of_expr(&f, &probs, DpllOptions::default());
        assert_close(p, brute::expr_probability(&f, &probs), 1e-12);
    }

    #[test]
    fn dispatches_cnf() {
        let f = BoolExpr::and_all([BoolExpr::or_all([v(0), v(1)]), v(2).negate()]);
        let probs = [0.3, 0.6, 0.2];
        let (p, _) = probability_of_expr(&f, &probs, DpllOptions::default());
        assert_close(p, brute::expr_probability(&f, &probs), 1e-12);
    }

    #[test]
    fn dispatches_tseitin_for_mixed_shapes() {
        // (x0 | (x1 & x2)) & (!x0 | x3) — neither DNF nor CNF.
        let f = BoolExpr::and_all([
            BoolExpr::or_all([v(0), BoolExpr::and_all([v(1), v(2)])]),
            BoolExpr::or_all([v(0).negate(), v(3)]),
        ]);
        let probs = [0.3, 0.6, 0.2, 0.8];
        let (p, _) = probability_of_expr(&f, &probs, DpllOptions::default());
        assert_close(p, brute::expr_probability(&f, &probs), 1e-10);
    }

    #[test]
    fn constants() {
        let (p, _) = probability_of_expr(&BoolExpr::TRUE, &[], DpllOptions::default());
        assert_close(p, 1.0, 1e-12);
        let (q, _) = probability_of_expr(&BoolExpr::FALSE, &[0.5], DpllOptions::default());
        assert_close(q, 0.0, 1e-12);
    }

    #[test]
    fn end_to_end_query_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(21);
        let db = generators::bipartite(2, 0.9, (0.2, 0.8), &mut rng);
        for q in [
            "exists x. exists y. R(x) & S(x,y) & T(y)",
            "forall x. forall y. (R(x) | S(x,y) | T(y))",
            "forall x. forall y. (S(x,y) -> R(x))",
            "exists x. R(x) & !T(x)",
        ] {
            let fo = parse_fo(q).unwrap();
            let expected = pdb_lineage::eval::brute_force_probability(&fo, &db);
            assert_close(probability_of_query(&fo, &db), expected, 1e-10);
        }
    }

    #[test]
    fn example_2_1_via_grounded_inference() {
        let p = [0.1, 0.2, 0.3];
        let q = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
        let (db, _) = generators::fig1(p, q);
        let sentence = parse_fo("forall x. forall y. (S(x,y) -> R(x))").unwrap();
        let expected = (p[0] + (1.0 - p[0]) * (1.0 - q[0]) * (1.0 - q[1]))
            * (p[1] + (1.0 - p[1]) * (1.0 - q[2]) * (1.0 - q[3]) * (1.0 - q[4]))
            * (1.0 - q[5]);
        assert_close(probability_of_query(&sentence, &db), expected, 1e-10);
    }
}
