//! Naive Monte-Carlo estimation, as an ablation baseline.
//!
//! Sample worlds from the TID distribution, evaluate the formula, average.
//! Unbiased but — unlike Karp–Luby — *not* an FPRAS: for small `p(F)` the
//! relative error explodes (the additive error is `O(1/√samples)` no matter
//! how small `p` is). The E9-style ablations use this contrast; it is also
//! the only sampler that works for non-monotone formulas.

use pdb_lineage::BoolExpr;
use rand::Rng;

/// An estimate with its standard error (shared shape with
/// [`crate::karp_luby::Estimate`]).
#[derive(Clone, Copy, Debug)]
pub struct McEstimate {
    /// The point estimate of `p(F)`.
    pub value: f64,
    /// Standard error.
    pub std_error: f64,
    /// Samples drawn.
    pub samples: u64,
}

/// Estimates `p(F)` by direct world sampling. `probs[i] = p(Xᵢ)` must be
/// standard probabilities.
pub fn estimate(expr: &BoolExpr, probs: &[f64], samples: u64, rng: &mut impl Rng) -> McEstimate {
    // Only the variables mentioned matter; sample just those.
    let vars: Vec<u32> = expr.vars().into_iter().map(|t| t.0).collect();
    let mut assignment = vec![false; probs.len()];
    let mut hits: u64 = 0;
    for _ in 0..samples {
        for &v in &vars {
            assignment[v as usize] = rng.gen_bool(probs[v as usize].clamp(0.0, 1.0));
        }
        if expr.eval(&|id| assignment[id.index()]) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    let var = mean * (1.0 - mean) / samples as f64;
    McEstimate {
        value: mean,
        std_error: var.sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::TupleId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    #[test]
    fn estimates_converge() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let probs = [0.4, 0.6, 0.3];
        let exact = brute::expr_probability(&f, &probs);
        let mut rng = StdRng::seed_from_u64(7);
        let est = estimate(&f, &probs, 100_000, &mut rng);
        assert!(
            (est.value - exact).abs() < 4.0 * est.std_error + 1e-3,
            "{} vs {}",
            est.value,
            exact
        );
    }

    #[test]
    fn handles_non_monotone_formulas() {
        // (x0 XOR x1) — outside Karp–Luby's monotone-DNF scope.
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1).negate()]),
            BoolExpr::and_all([v(0).negate(), v(1)]),
        ]);
        let probs = [0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(9);
        let est = estimate(&f, &probs, 50_000, &mut rng);
        assert!((est.value - 0.5).abs() < 0.02);
    }

    #[test]
    fn rare_events_have_large_relative_error() {
        // p(F) = 1e-6: with 10k samples naive MC almost surely returns 0 —
        // the documented weakness that motivates Karp–Luby.
        let f = BoolExpr::and_all([v(0), v(1)]);
        let probs = [1e-3, 1e-3];
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate(&f, &probs, 10_000, &mut rng);
        assert!(est.value == 0.0 || est.value >= 1e-4);
        // Karp–Luby on the same event with the same budget is spot-on.
        let mut db = pdb_data::TupleDb::new();
        db.insert("R", [0], 1e-3);
        db.insert("S", [0], 1e-3);
        let idx = db.index();
        let lin =
            pdb_lineage::ucq_dnf_lineage(&pdb_logic::parse_ucq("R(x), S(x)").unwrap(), &db, &idx);
        let kl = crate::karp_luby::estimate(&lin, &[1e-3, 1e-3], 10_000, &mut rng);
        assert!((kl.value - 1e-6).abs() < 1e-9, "KL is exact on one term");
    }

    #[test]
    fn constants() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(estimate(&BoolExpr::TRUE, &[], 100, &mut rng).value, 1.0);
        assert_eq!(estimate(&BoolExpr::FALSE, &[], 100, &mut rng).value, 0.0);
    }
}
