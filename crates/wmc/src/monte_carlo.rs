//! Naive Monte-Carlo estimation, as an ablation baseline.
//!
//! Sample worlds from the TID distribution, evaluate the formula, average.
//! Unbiased but — unlike Karp–Luby — *not* an FPRAS: for small `p(F)` the
//! relative error explodes (the additive error is `O(1/√samples)` no matter
//! how small `p` is). The E9-style ablations use this contrast; it is also
//! the only sampler that works for non-monotone formulas.

use pdb_kernel::{BoolBuilder, FlatBool};
use pdb_lineage::BoolExpr;
use rand::Rng;

/// An estimate with its standard error (shared shape with
/// [`crate::karp_luby::Estimate`]).
#[derive(Clone, Copy, Debug)]
pub struct McEstimate {
    /// The point estimate of `p(F)`.
    pub value: f64,
    /// Standard error.
    pub std_error: f64,
    /// Samples drawn.
    pub samples: u64,
}

/// Lowers a `BoolExpr` tree into a [`FlatBool`] program (post-order, so
/// children precede parents). Boolean operators are total and
/// deterministic, so the flat program agrees with `BoolExpr::eval` on
/// every assignment.
fn flatten(expr: &BoolExpr) -> FlatBool {
    fn go(e: &BoolExpr, b: &mut BoolBuilder) -> u32 {
        match e {
            BoolExpr::Const(v) => b.push_const(*v),
            BoolExpr::Var(id) => b.push_var(id.index() as u32),
            BoolExpr::Not(inner) => {
                let c = go(inner, b);
                b.push_not(c)
            }
            BoolExpr::And(parts) => {
                let kids: Vec<u32> = parts.iter().map(|p| go(p, b)).collect();
                b.push_all(&kids)
            }
            BoolExpr::Or(parts) => {
                let kids: Vec<u32> = parts.iter().map(|p| go(p, b)).collect();
                b.push_any(&kids)
            }
        }
    }
    let mut b = BoolBuilder::new();
    go(expr, &mut b);
    b.finish()
}

/// Estimates `p(F)` by direct world sampling. `probs[i] = p(Xᵢ)` must be
/// standard probabilities.
///
/// The formula is flattened once into a [`FlatBool`] kernel program; each
/// sampled world is then a single non-recursive forward pass instead of a
/// `BoolExpr` tree walk per sample.
pub fn estimate(expr: &BoolExpr, probs: &[f64], samples: u64, rng: &mut impl Rng) -> McEstimate {
    // Only the variables mentioned matter; sample just those.
    let vars: Vec<u32> = expr.vars().into_iter().map(|t| t.0).collect();
    let flat = flatten(expr);
    let mut assignment = vec![false; probs.len()];
    let mut scratch = Vec::new();
    let mut hits: u64 = 0;
    for _ in 0..samples {
        for &v in &vars {
            assignment[v as usize] = rng.gen_bool(probs[v as usize].clamp(0.0, 1.0));
        }
        if flat.eval_into(&assignment, &mut scratch) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    let var = mean * (1.0 - mean) / samples as f64;
    McEstimate {
        value: mean,
        std_error: var.sqrt(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use pdb_data::TupleId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn v(i: u32) -> BoolExpr {
        BoolExpr::var(TupleId(i))
    }

    #[test]
    fn estimates_converge() {
        let f = BoolExpr::or_all([BoolExpr::and_all([v(0), v(1)]), v(2)]);
        let probs = [0.4, 0.6, 0.3];
        let exact = brute::expr_probability(&f, &probs);
        let mut rng = StdRng::seed_from_u64(7);
        let est = estimate(&f, &probs, 100_000, &mut rng);
        assert!(
            (est.value - exact).abs() < 4.0 * est.std_error + 1e-3,
            "{} vs {}",
            est.value,
            exact
        );
    }

    #[test]
    fn handles_non_monotone_formulas() {
        // (x0 XOR x1) — outside Karp–Luby's monotone-DNF scope.
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1).negate()]),
            BoolExpr::and_all([v(0).negate(), v(1)]),
        ]);
        let probs = [0.5, 0.5];
        let mut rng = StdRng::seed_from_u64(9);
        let est = estimate(&f, &probs, 50_000, &mut rng);
        assert!((est.value - 0.5).abs() < 0.02);
    }

    #[test]
    fn rare_events_have_large_relative_error() {
        // p(F) = 1e-6: with 10k samples naive MC almost surely returns 0 —
        // the documented weakness that motivates Karp–Luby.
        let f = BoolExpr::and_all([v(0), v(1)]);
        let probs = [1e-3, 1e-3];
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate(&f, &probs, 10_000, &mut rng);
        assert!(est.value == 0.0 || est.value >= 1e-4);
        // Karp–Luby on the same event with the same budget is spot-on.
        let mut db = pdb_data::TupleDb::new();
        db.insert("R", [0], 1e-3);
        db.insert("S", [0], 1e-3);
        let idx = db.index();
        let lin =
            pdb_lineage::ucq_dnf_lineage(&pdb_logic::parse_ucq("R(x), S(x)").unwrap(), &db, &idx);
        let kl = crate::karp_luby::estimate(&lin, &[1e-3, 1e-3], 10_000, &mut rng);
        assert!((kl.value - 1e-6).abs() < 1e-9, "KL is exact on one term");
    }

    #[test]
    fn flat_program_matches_tree_walk_exhaustively() {
        let f = BoolExpr::or_all([
            BoolExpr::and_all([v(0), v(1).negate()]),
            BoolExpr::and_all([v(1), v(2), v(3).negate()]),
            v(3),
        ]);
        let flat = super::flatten(&f);
        for mask in 0u32..16 {
            let w: Vec<bool> = (0..4).map(|b| mask >> b & 1 == 1).collect();
            assert_eq!(flat.eval(&w), f.eval(&|id| w[id.index()]), "mask={mask}");
        }
    }

    #[test]
    fn constants() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(estimate(&BoolExpr::TRUE, &[], 100, &mut rng).value, 1.0);
        assert_eq!(estimate(&BoolExpr::FALSE, &[], 100, &mut rng).value, 0.0);
    }
}
