//! # pdb-mln — correlations through constraints (§3 + appendix)
//!
//! Tuple-independent databases look correlation-free, but §3 shows they are
//! not: conditioning a TID on a database constraint recovers the full
//! expressiveness of Markov Logic Networks (and hence of Markov networks).
//! This crate implements both sides of Proposition 3.1:
//!
//! * [`model::Mln`] — soft constraints `(w, Δ)`, grounding, exact world
//!   weights, the partition function `Z`, and `p_MLN(Q)` by enumeration,
//! * [`translate`] — the MLN → TID + constraint encoding: each soft
//!   constraint `(w, Δ)` becomes a fresh relation `R` with tuple probability
//!   `1/w` and the clause `Γ = ∀x⃗ (R(x⃗) ∨ Δ)`; then
//!   `p_MLN(Q) = p_D(Q | Γ)`.
//!
//!   *Unit note:* the paper's §3 text gives the value `1/(w−1)` — that is
//!   the **weight** of the fresh variable (appendix, second approach); as a
//!   *probability* it is `p = u/(1+u) = 1/w`. Our tests verify the
//!   proposition numerically, which pins the unit down. For `w < 1` the
//!   probability `1/w > 1` is non-standard, exactly as the appendix warns,
//!   and conditional probabilities still land in `[0,1]`.
//!
//! * [`factors`] — the appendix machinery at the Boolean level: weighted
//!   variables, factors `(w, G)`, `weight'(θ)`, `Z'`, and both
//!   factor-elimination encodings (`X ⟺ G` with weight `w`, and `X ∨ G`
//!   with weight `1/(w−1)`), including the Figure 3 table generator,
//! * [`infer`] — conditional probability `p_D(Q | Γ)` via brute force and
//!   via grounded inference (lineage + DPLL), the SlimShot architecture.

pub mod factors;
pub mod infer;
pub mod model;
pub mod translate;

pub use infer::{conditional_brute, conditional_grounded};
pub use model::{Mln, SoftConstraint};
pub use translate::{translate, Translation};
