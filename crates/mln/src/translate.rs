//! The MLN → TID + constraint translation of Proposition 3.1.
//!
//! For each soft constraint `(wᵢ, Δᵢ)` with free variables `x⃗ᵢ` we introduce
//! a fresh relation `Cᵢ/|x⃗ᵢ|` whose tuples all carry probability `1/wᵢ`
//! (the appendix's second approach in probability units; see the crate docs
//! for the weight-vs-probability footnote), and the clause
//! `Γᵢ = ∀x⃗ᵢ (Cᵢ(x⃗ᵢ) ∨ Δᵢ(x⃗ᵢ))`. Original predicates get probability 1/2
//! on every tuple of `Tup`. Then, for every query `Q` over the original
//! vocabulary, `p_MLN(Q) = p_D(Q | Γ)` with `Γ = ⋀ᵢ Γᵢ`.
//!
//! Hard constraints (`w = ∞`) translate to `p = 0`: the auxiliary tuple can
//! never fire, so `Γ` forces `Δ` outright. Weights `w < 1` give
//! probabilities `1/w > 1` — non-standard, and perfectly fine for the
//! conditional.

use crate::model::Mln;
use pdb_data::{all_tuples, TupleDb};
use pdb_logic::{Fo, Predicate, Var};

/// The result of translating an MLN.
#[derive(Clone, Debug)]
pub struct Translation {
    /// The tuple-independent database `D` (original predicates at 1/2,
    /// auxiliary constraint relations at `1/wᵢ`).
    pub db: TupleDb,
    /// The conjunction `Γ` of the per-constraint clauses.
    pub gamma: Fo,
    /// The auxiliary predicates introduced, one per soft constraint.
    pub aux_predicates: Vec<Predicate>,
}

/// Translates an MLN into a TID plus constraint per Proposition 3.1.
pub fn translate(mln: &Mln) -> Translation {
    let mut db = TupleDb::new();
    db.extend_domain(mln.domain().iter().copied());
    // Original predicates: probability 1/2 on all of Tup.
    for pred in mln.predicates() {
        let rel = db.relation_mut(pred.name(), pred.arity());
        for t in all_tuples(mln.domain(), pred.arity()) {
            rel.insert(t, 0.5);
        }
    }
    // One auxiliary relation + clause per constraint.
    let mut clauses: Vec<Fo> = Vec::new();
    let mut aux_predicates = Vec::new();
    for (i, c) in mln.constraints().iter().enumerate() {
        let free: Vec<Var> = c.formula.free_vars().into_iter().collect();
        let name = format!("C{i}");
        let p = if c.weight.is_infinite() {
            0.0
        } else {
            1.0 / c.weight
        };
        let rel = db.relation_mut(&name, free.len());
        for t in all_tuples(mln.domain(), free.len()) {
            rel.insert(t, p);
        }
        aux_predicates.push(Predicate::new(&name, free.len()));
        // Γᵢ = ∀x⃗ (Cᵢ(x⃗) ∨ Δᵢ)
        let aux_atom = Fo::Atom(pdb_logic::Atom::new(
            Predicate::new(&name, free.len()),
            free.iter().cloned().map(pdb_logic::Term::Var).collect(),
        ));
        let body = aux_atom.or(c.formula.clone());
        let clause = free
            .into_iter()
            .rev()
            .fold(body, |acc, v| Fo::Forall(v, Box::new(acc)));
        clauses.push(clause);
    }
    let gamma = match clauses.len() {
        0 => Fo::True,
        1 => clauses.pop().expect("len checked"),
        _ => Fo::And(clauses),
    };
    Translation {
        db,
        gamma,
        aux_predicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::conditional_brute;
    use pdb_logic::parse_fo;
    use pdb_num::assert_close;

    #[test]
    fn translation_shape_matches_section_3() {
        // Manager example: Manager/2 and HighlyCompensated/1 at 1/2, C0/2 at
        // 1/w = 1/3.9, Γ = ∀m∀e (C0(m,e) ∨ ¬Manager(m,e) ∨ HC(m)).
        let mln = Mln::manager_example(2);
        let t = translate(&mln);
        assert_eq!(t.aux_predicates.len(), 1);
        assert_eq!(t.db.relation("Manager").unwrap().len(), 4);
        assert_eq!(t.db.relation("HighlyCompensated").unwrap().len(), 2);
        let c0 = t.db.relation("C0").unwrap();
        assert_eq!(c0.len(), 4);
        for (_, p) in c0.iter() {
            assert_close(p, 1.0 / 3.9, 1e-12);
        }
        assert!(t.gamma.is_sentence());
        assert!(t.gamma.is_unate());
    }

    #[test]
    fn proposition_3_1_on_the_manager_example() {
        // p_MLN(Q) = p_D(Q | Γ) for a suite of queries over the original
        // vocabulary, domain size 2 (1024 worlds on the translated side).
        let mln = Mln::manager_example(2);
        let t = translate(&mln);
        for q in [
            "Manager(0,1)",
            "HighlyCompensated(0)",
            "Manager(0,1) & HighlyCompensated(0)",
            "exists m. exists e. Manager(m,e)",
            "forall m. HighlyCompensated(m)",
            "exists m. Manager(m,m) & !HighlyCompensated(m)",
        ] {
            let fo = parse_fo(q).unwrap();
            let lhs = mln.probability(&fo);
            let rhs = conditional_brute(&fo, &t.gamma, &t.db);
            assert_close(lhs, rhs, 1e-10);
        }
    }

    #[test]
    fn proposition_3_1_with_small_weight() {
        // w < 1: auxiliary probability 1/w > 1 is non-standard; the
        // conditional must still match the MLN exactly.
        let mut mln = Mln::new(vec![0, 1]);
        mln.add_constraint(0.4, parse_fo("R(x) -> S(x)").unwrap());
        let t = translate(&mln);
        let c0 = t.db.relation("C0").unwrap();
        for (_, p) in c0.iter() {
            assert_close(p, 2.5, 1e-12);
            assert!(p > 1.0, "non-standard probability expected");
        }
        for q in ["R(0)", "S(1)", "exists x. R(x) & S(x)"] {
            let fo = parse_fo(q).unwrap();
            assert_close(
                mln.probability(&fo),
                conditional_brute(&fo, &t.gamma, &t.db),
                1e-10,
            );
        }
    }

    #[test]
    fn hard_constraints_force_delta() {
        let mut mln = Mln::new(vec![0]);
        mln.add_constraint(f64::INFINITY, parse_fo("R(x)").unwrap());
        let t = translate(&mln);
        // C0 tuples have probability 0, so Γ can only hold when Δ = R(x)
        // holds for all x: p(R(0) | Γ) = 1.
        let p = conditional_brute(&parse_fo("R(0)").unwrap(), &t.gamma, &t.db);
        assert_close(p, 1.0, 1e-12);
    }

    #[test]
    fn multiple_constraints_conjoin() {
        let mut mln = Mln::new(vec![0, 1]);
        mln.add_constraint(2.0, parse_fo("R(x) -> S(x)").unwrap());
        mln.add_constraint(3.0, parse_fo("S(x) -> R(x)").unwrap());
        let t = translate(&mln);
        assert_eq!(t.aux_predicates.len(), 2);
        for q in ["R(0)", "R(0) & S(0)", "exists x. R(x)"] {
            let fo = parse_fo(q).unwrap();
            assert_close(
                mln.probability(&fo),
                conditional_brute(&fo, &t.gamma, &t.db),
                1e-10,
            );
        }
    }
}
