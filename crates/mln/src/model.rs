//! Markov Logic Networks: soft constraints, grounding, exact semantics.

use pdb_data::{all_tuples, Const, TupleDb, TupleIndex, World};
use pdb_logic::{Fo, Predicate, Term, Var};
use pdb_num::KahanSum;
use std::collections::BTreeSet;

/// A soft constraint `(w, Δ)`: the first-order formula `Δ` (with free
/// variables to be grounded) typically holds, with confidence weight `w ≥ 0`
/// (`w > 1` ⇒ more likely than not; `w = ∞` ⇒ hard constraint).
#[derive(Clone, Debug)]
pub struct SoftConstraint {
    /// The weight.
    pub weight: f64,
    /// The formula; its free variables are the grounding variables.
    pub formula: Fo,
}

/// A Markov Logic Network over an explicit finite domain.
#[derive(Clone, Debug)]
pub struct Mln {
    constraints: Vec<SoftConstraint>,
    domain: Vec<Const>,
}

impl Mln {
    /// An MLN over the given domain.
    pub fn new(domain: impl Into<Vec<Const>>) -> Mln {
        Mln {
            constraints: Vec::new(),
            domain: domain.into(),
        }
    }

    /// Adds a soft constraint `(w, Δ)`. Weights must be positive (use
    /// `f64::INFINITY` for hard constraints).
    pub fn add_constraint(&mut self, weight: f64, formula: Fo) -> &mut Self {
        assert!(weight > 0.0, "MLN weights must be positive");
        self.constraints.push(SoftConstraint { weight, formula });
        self
    }

    /// The constraints.
    pub fn constraints(&self) -> &[SoftConstraint] {
        &self.constraints
    }

    /// The domain.
    pub fn domain(&self) -> &[Const] {
        &self.domain
    }

    /// All predicate symbols mentioned by the constraints.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.constraints
            .iter()
            .flat_map(|c| c.formula.predicates())
            .collect()
    }

    /// `ground(MLN)`: every substitution of each constraint's free
    /// variables by domain constants, as `(w, F)` with `F` a sentence.
    pub fn groundings(&self) -> Vec<(f64, Fo)> {
        let mut out = Vec::new();
        for c in &self.constraints {
            let free: Vec<Var> = c.formula.free_vars().into_iter().collect();
            for tuple in all_tuples(&self.domain, free.len()) {
                let mut f = c.formula.clone();
                for (v, &a) in free.iter().zip(tuple.values()) {
                    f = f.substitute(v, &Term::Const(a));
                }
                debug_assert!(f.is_sentence());
                out.push((c.weight, f));
            }
        }
        out
    }

    /// The set `Tup` as an explicit database (every possible tuple of every
    /// mentioned predicate, with placeholder probability 1 — the MLN itself
    /// assigns no per-tuple weights). Used for world enumeration.
    pub fn full_db(&self) -> TupleDb {
        let mut db = TupleDb::new();
        db.extend_domain(self.domain.iter().copied());
        for pred in self.predicates() {
            let rel = db.relation_mut(pred.name(), pred.arity());
            for t in all_tuples(&self.domain, pred.arity()) {
                rel.insert(t, 1.0);
            }
        }
        db
    }

    /// `weight(W) = ∏_{(w,F) ∈ ground(MLN): W ⊨ F} w`.
    pub fn weight_of_world(
        &self,
        world: &World,
        db: &TupleDb,
        index: &TupleIndex,
        groundings: &[(f64, Fo)],
    ) -> f64 {
        let mut weight = 1.0;
        for (w, f) in groundings {
            if pdb_lineage::eval::holds(f, db, index, world) {
                weight *= w;
            }
        }
        weight
    }

    /// The partition function `Z = Σ_W weight(W)` by world enumeration.
    /// Exponential — capped by the 30-tuple limit of world enumeration.
    pub fn partition(&self) -> f64 {
        let db = self.full_db();
        let index = db.index();
        let groundings = self.groundings();
        let mut z = KahanSum::new();
        for w in pdb_data::worlds::enumerate(&index) {
            z.add(self.weight_of_world(&w, &db, &index, &groundings));
        }
        z.total()
    }

    /// `p_MLN(Q) = Σ_{W ⊨ Q} weight(W) / Z` by world enumeration.
    pub fn probability(&self, q: &Fo) -> f64 {
        assert!(q.is_sentence(), "MLN queries must be sentences");
        let db = self.full_db();
        let index = db.index();
        let groundings = self.groundings();
        let mut num = KahanSum::new();
        let mut z = KahanSum::new();
        for w in pdb_data::worlds::enumerate(&index) {
            let weight = self.weight_of_world(&w, &db, &index, &groundings);
            z.add(weight);
            if pdb_lineage::eval::holds(q, &db, &index, &w) {
                num.add(weight);
            }
        }
        num.total() / z.total()
    }

    /// The §3 running example: `3.9: Manager(M,E) ⇒ HighlyCompensated(M)`
    /// over a domain of size `n`.
    pub fn manager_example(n: u64) -> Mln {
        let mut mln = Mln::new((0..n).collect::<Vec<_>>());
        let delta =
            pdb_logic::parse_fo("Manager(m,e) -> HighlyCompensated(m)").expect("fixture parses");
        mln.add_constraint(3.9, delta);
        mln
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb_logic::parse_fo;
    use pdb_num::assert_close;

    #[test]
    fn groundings_enumerate_the_domain() {
        let mln = Mln::manager_example(2);
        // Two free variables over a 2-element domain: 4 groundings.
        assert_eq!(mln.groundings().len(), 4);
        for (w, f) in mln.groundings() {
            assert_eq!(w, 3.9);
            assert!(f.is_sentence());
        }
    }

    #[test]
    fn no_constraints_is_uniform() {
        let mut mln = Mln::new(vec![0, 1]);
        mln.add_constraint(1.0, parse_fo("R(x)").unwrap());
        // Weight-1 constraints do not skew anything: every world weighs 1.
        assert_close(mln.partition(), 4.0, 1e-12); // 2 tuples → 4 worlds
        let q = parse_fo("R(0)").unwrap();
        assert_close(mln.probability(&q), 0.5, 1e-12);
    }

    #[test]
    fn weights_skew_the_distribution() {
        // Single 0-ary-ish constraint: "R(0)" with weight 3 over a single
        // possible tuple R(0) plus R(1): worlds satisfying R(0) weigh 3.
        let mut mln = Mln::new(vec![0, 1]);
        mln.add_constraint(3.0, parse_fo("R(0)").unwrap());
        // Worlds: {} w=1, {R0} w=3, {R1} w=1, {R0,R1} w=3 ⇒ Z = 8.
        assert_close(mln.partition(), 8.0, 1e-12);
        assert_close(
            mln.probability(&parse_fo("R(0)").unwrap()),
            6.0 / 8.0,
            1e-12,
        );
        assert_close(
            mln.probability(&parse_fo("R(1)").unwrap()),
            4.0 / 8.0,
            1e-12,
        );
    }

    #[test]
    fn manager_example_monotonicity() {
        // The soft constraint makes HighlyCompensated more likely for
        // managers: p(H(0) | M(0,1)) > p(H(0)) marginally… verified via the
        // conditional identity instead: p(H(0) ∧ M(0,1)) / p(M(0,1)).
        let mln = Mln::manager_example(2);
        let h = parse_fo("HighlyCompensated(0)").unwrap();
        let m = parse_fo("Manager(0,1)").unwrap();
        let hm = parse_fo("HighlyCompensated(0) & Manager(0,1)").unwrap();
        let p_h = mln.probability(&h);
        let p_cond = mln.probability(&hm) / mln.probability(&m);
        assert!(
            p_cond > p_h,
            "being a manager must raise p(HighlyCompensated): {p_cond} vs {p_h}"
        );
    }

    #[test]
    fn hard_constraints_exclude_worlds() {
        let mut mln = Mln::new(vec![0]);
        mln.add_constraint(f64::INFINITY, parse_fo("R(0)").unwrap());
        // Worlds without R(0) weigh 1; with R(0) weigh ∞ — probability of
        // R(0) tends to 1. Enumeration with ∞ produces inf/inf; instead we
        // model hardness with a very large weight here.
        let mut soft = Mln::new(vec![0]);
        soft.add_constraint(1e15, parse_fo("R(0)").unwrap());
        let p = soft.probability(&parse_fo("R(0)").unwrap());
        assert!(p > 1.0 - 1e-12);
        let _ = mln; // ∞ handled by the translation path (p = 1/w = 0)
    }

    #[test]
    fn probability_is_normalized() {
        let mln = Mln::manager_example(1);
        let q = parse_fo("Manager(0,0)").unwrap();
        let p = mln.probability(&q);
        let np = mln.probability(&q.clone().not());
        assert_close(p + np, 1.0, 1e-12);
        assert!((0.0..=1.0).contains(&p));
    }
}
