//! Conditional-probability inference `p_D(Q | Γ)`.
//!
//! Two engines:
//! * [`conditional_brute`] — possible-world enumeration (the definition;
//!   exponential, used as ground truth),
//! * [`conditional_grounded`] — grounded inference: build the lineages of
//!   `Q ∧ Γ` and `Γ` and run the DPLL weighted model counter on each. This
//!   is the architecture of SlimShot [37] with the safe-plan fast path
//!   replaced by exact counting.
//!
//! Note the non-standard-probability subtlety: with auxiliary probabilities
//! `1/w > 1` (from `w < 1` factors) each individual count may leave `[0,1]`,
//! but the *ratio* is a standard probability — the appendix's observation.

use pdb_data::TupleDb;
use pdb_logic::Fo;
use pdb_num::KahanSum;
use pdb_wmc::DpllOptions;

/// `p_D(Q | Γ) = p_D(Q ∧ Γ) / p_D(Γ)` by world enumeration.
pub fn conditional_brute(q: &Fo, gamma: &Fo, db: &TupleDb) -> f64 {
    let index = db.index();
    let mut joint = KahanSum::new();
    let mut cond = KahanSum::new();
    for w in pdb_data::worlds::enumerate(&index) {
        if pdb_lineage::eval::holds(gamma, db, &index, &w) {
            let p = w.probability(&index);
            cond.add(p);
            if pdb_lineage::eval::holds(q, db, &index, &w) {
                joint.add(p);
            }
        }
    }
    joint.total() / cond.total()
}

/// `p_D(Q | Γ)` by grounded inference (lineage + DPLL) — polynomially many
/// variables, exponential only when the counting itself is hard.
pub fn conditional_grounded(q: &Fo, gamma: &Fo, db: &TupleDb) -> f64 {
    let index = db.index();
    let probs: Vec<f64> = index.iter().map(|(_, r)| r.prob).collect();
    let lin_gamma = pdb_lineage::lineage(gamma, db, &index);
    let lin_joint =
        pdb_lineage::BoolExpr::and_all([pdb_lineage::lineage(q, db, &index), lin_gamma.clone()]);
    let (p_joint, _) = pdb_wmc::probability_of_expr(&lin_joint, &probs, DpllOptions::default());
    let (p_gamma, _) = pdb_wmc::probability_of_expr(&lin_gamma, &probs, DpllOptions::default());
    p_joint / p_gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Mln;
    use crate::translate::translate;
    use pdb_logic::parse_fo;
    use pdb_num::assert_close;

    #[test]
    fn brute_and_grounded_agree() {
        let mln = Mln::manager_example(2);
        let t = translate(&mln);
        for q in [
            "Manager(0,1)",
            "HighlyCompensated(0)",
            "exists m. exists e. Manager(m,e) & HighlyCompensated(m)",
        ] {
            let fo = parse_fo(q).unwrap();
            let b = conditional_brute(&fo, &t.gamma, &t.db);
            let g = conditional_grounded(&fo, &t.gamma, &t.db);
            assert_close(g, b, 1e-10);
        }
    }

    #[test]
    fn grounded_matches_mln_semantics_end_to_end() {
        let mln = Mln::manager_example(2);
        let t = translate(&mln);
        let q = parse_fo("exists m. HighlyCompensated(m)").unwrap();
        assert_close(
            conditional_grounded(&q, &t.gamma, &t.db),
            mln.probability(&q),
            1e-10,
        );
    }

    #[test]
    fn conditioning_on_true_is_unconditional() {
        let mut db = TupleDb::new();
        db.insert("R", [0], 0.3);
        let q = parse_fo("R(0)").unwrap();
        let top = Fo::True;
        assert_close(conditional_brute(&q, &top, &db), 0.3, 1e-12);
        assert_close(conditional_grounded(&q, &top, &db), 0.3, 1e-12);
    }

    #[test]
    fn nonstandard_probabilities_cancel_in_the_ratio() {
        let mut mln = Mln::new(vec![0, 1]);
        mln.add_constraint(0.5, parse_fo("R(x) -> S(x)").unwrap());
        let t = translate(&mln);
        let q = parse_fo("exists x. S(x)").unwrap();
        let b = conditional_brute(&q, &t.gamma, &t.db);
        let g = conditional_grounded(&q, &t.gamma, &t.db);
        assert_close(g, b, 1e-10);
        assert!((0.0..=1.0).contains(&g), "conditional must be standard");
        assert_close(g, mln.probability(&q), 1e-10);
    }
}
