//! Offline stand-in for the slice of crates.io `proptest` this workspace
//! uses: the `proptest!` macro, `Strategy` combinators (`prop_map`,
//! `prop_recursive`, `prop_oneof!`, `Just`, ranges, tuples,
//! `prop::collection::vec`), `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design (no network, no registry):
//! - **no shrinking** — a failing case reports the generated inputs via the
//!   ordinary panic message (`prop_assert!` formats them), but is not
//!   minimized;
//! - **fixed seeding** — each test function derives its RNG seed from the
//!   test's name, so runs are reproducible; set `PROPTEST_SEED` to vary.

use std::rc::Rc;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of one type. Upstream proptest couples generation
/// with shrinking through `ValueTree`; this stand-in generates only.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (upstream's `BoxedStrategy`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Recursive strategies: `self` is the leaf; `recurse` expands a
    /// strategy for depth-`d` values into one for depth-`d+1` values. The
    /// `_desired_size` / `_branch` hints are accepted for source
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let expanded = recurse(current).boxed();
            let leaf = self.clone().boxed();
            // Mostly expand, sometimes bottom out early: keeps generated
            // structures varied without exponential blow-up.
            current = Union {
                arms: vec![(1, leaf), (3, expanded)],
            }
            .boxed();
        }
        current
    }
}

/// `Strategy` is used through `&S` in some call sites.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!` builds this).
pub struct Union<V> {
    /// `(weight, strategy)` arms.
    pub arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Union<V> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum mismatch")
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector strategy over `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! The `prop::` namespace as the prelude exposes it.
    pub use super::collection;
}

pub mod strategy {
    //! Strategy types, mirroring upstream's module layout.
    pub use super::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod test_runner {
    //! Runner support used by the generated test bodies.
    pub use super::{ProptestConfig, TestRng};
}

/// Derives a stable 64-bit seed from a test's module path and name (FNV-1a),
/// XORed with `PROPTEST_SEED` when set.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => h ^ s.parse::<u64>().unwrap_or(0),
        Err(_) => h,
    }
}

/// Builds the per-test RNG.
pub fn rng_for(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for(name))
}

pub mod prelude {
    //! Everything the `use proptest::prelude::*;` call sites expect.
    pub use super::collection;
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand::{Rng as _, SeedableRng as _};
}

/// Like `assert!`, inside a property (no shrinking; panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type. Weighted
/// arms (`w => strat`) are supported like upstream.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            arms: vec![$(($weight, $crate::strategy::Strategy::boxed($strat))),+],
        }
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            arms: vec![$((1u32, $crate::strategy::Strategy::boxed($strat))),+],
        }
    };
}

/// The `proptest!` block: turns `fn name(pat in strategy, …) { body }` items
/// into `#[test]` functions that loop over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&$strat, &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0i64..5, 5i64..10)) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((5..10).contains(&b));
        }

        #[test]
        fn vec_and_map(v in collection::vec((0u32..3).prop_map(|x| x * 2), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x <= 4));
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in prop_oneof![
                (0u32..4).prop_map(Tree::Leaf),
                Just(Tree::Leaf(9)),
            ]
            .prop_recursive(3, 16, 3, |inner| {
                collection::vec(inner, 1..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} in {:?}", depth(&t), t);
        }
    }
}
