//! Correlations through constraints (§3): the Manager MLN.
//!
//! Builds the paper's soft constraint
//! `3.9 : Manager(M,E) ⇒ HighlyCompensated(M)`, translates it to a
//! tuple-independent database plus the constraint `Γ`, and demonstrates
//! Proposition 3.1: `p_MLN(Q) = p_D(Q | Γ)` — correlations emerge from a
//! purely independent database by conditioning.
//!
//! Run with `cargo run --example mln_managers`.

use probdb::logic::parse_fo;
use probdb::mln::{conditional_brute, conditional_grounded, translate, Mln};

fn main() {
    let n = 2; // domain {0, 1}: two people
    let mln = Mln::manager_example(n);
    println!("=== §3: the Manager MLN over a domain of {n} ===");
    for c in mln.constraints() {
        println!("soft constraint  {} : {:?}", c.weight, c.formula);
    }
    println!("groundings: {}", mln.groundings().len());
    println!("Z = {:.6}\n", mln.partition());

    let t = translate(&mln);
    println!("=== Proposition 3.1: translation to TID + constraint ===");
    println!("Γ = {:?}", t.gamma);
    println!(
        "auxiliary relation C0 with p = 1/w = {:.6} on every tuple",
        1.0 / 3.9
    );
    println!(
        "(the paper's §3 text prints 1/(w−1) ≈ 0.345 — that is the \
              *weight* of the auxiliary variable; as a probability it is \
              1/w ≈ {:.3}, which the checks below pin down)\n",
        1.0 / 3.9
    );

    println!(
        "{:<55} {:>10} {:>10} {:>10}",
        "query", "p_MLN", "p(Q|Γ)", "grounded"
    );
    for q in [
        "Manager(0,1)",
        "HighlyCompensated(0)",
        "Manager(0,1) & HighlyCompensated(0)",
        "exists m. exists e. Manager(m,e)",
        "forall m. HighlyCompensated(m)",
    ] {
        let fo = parse_fo(q).unwrap();
        let lhs = mln.probability(&fo);
        let rhs = conditional_brute(&fo, &t.gamma, &t.db);
        let grounded = conditional_grounded(&fo, &t.gamma, &t.db);
        assert!((lhs - rhs).abs() < 1e-10, "Proposition 3.1 violated!");
        assert!((lhs - grounded).abs() < 1e-10);
        println!("{q:<55} {lhs:>10.6} {rhs:>10.6} {grounded:>10.6}");
    }

    // The correlation the MLN encodes: managing someone raises the
    // probability of being highly compensated.
    let h = parse_fo("HighlyCompensated(0)").unwrap();
    let m = parse_fo("Manager(0,1)").unwrap();
    let hm = parse_fo("HighlyCompensated(0) & Manager(0,1)").unwrap();
    let p_h = mln.probability(&h);
    let p_h_given_m = mln.probability(&hm) / mln.probability(&m);
    println!(
        "\np(HighlyCompensated(0))                = {p_h:.6}\n\
         p(HighlyCompensated(0) | Manager(0,1)) = {p_h_given_m:.6}\n\
         managing someone raises the posterior by {:+.3} — a correlation, \
         from independent tuples + one constraint.",
        p_h_given_m - p_h
    );
}
