//! A guided tour of the paper's Figure 1 and Example 2.1.
//!
//! Builds the 9-tuple TID verbatim, computes the probability of the
//! inclusion constraint `Q = ∀x∀y (S(x,y) ⇒ R(x))` three independent ways
//! (closed form, lifted inference, brute-force world enumeration), then
//! reproduces the §6 plan comparison (`Plan₁` vs `Plan₂`, footnote 9).
//!
//! Run with `cargo run --example fig1_walkthrough`.

use probdb::data::generators;
use probdb::lineage::eval::brute_force_probability;
use probdb::logic::{parse_cq, parse_fo, Var};
use probdb::plans::{execute, is_safe, Plan};

fn main() {
    let p = [0.1, 0.2, 0.3];
    let q = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let (db, sym) = generators::fig1(p, q);

    println!("=== Figure 1: the tuple-independent database ===");
    for rel in db.relations() {
        println!("{}/{}:", rel.name(), rel.arity());
        for (t, prob) in rel.iter() {
            let pretty: Vec<String> = t.values().iter().map(|&c| sym.name(c)).collect();
            println!("  ({})  P = {prob}", pretty.join(","));
        }
    }
    println!(
        "\n|DOM| = {} constants, {} possible tuples, 2^{} possible worlds",
        db.domain().len(),
        db.tuple_count(),
        db.tuple_count()
    );

    // --- Example 2.1 ------------------------------------------------------
    println!("\n=== Example 2.1: Q = ∀x∀y (S(x,y) ⇒ R(x)) ===");
    let sentence = parse_fo("forall x. forall y. (S(x,y) -> R(x))").unwrap();

    // The paper's closed form.
    let closed = (p[0] + (1.0 - p[0]) * (1.0 - q[0]) * (1.0 - q[1]))
        * (p[1] + (1.0 - p[1]) * (1.0 - q[2]) * (1.0 - q[3]) * (1.0 - q[4]))
        * (1.0 - q[5]);
    println!("closed form          p_D(Q) = {closed:.10}");

    // Lifted inference (the unate ∀* fragment via duality).
    let lifted = probdb::lifted::probability_fo(&sentence, &db).expect("Example 2.1 is liftable");
    println!("lifted inference     p_D(Q) = {lifted:.10}");

    // Brute force: sum over all 2^9 worlds (the definition, eq. (1)).
    let brute = brute_force_probability(&sentence, &db);
    println!("world enumeration    p_D(Q) = {brute:.10}");

    assert!((closed - lifted).abs() < 1e-10);
    assert!((closed - brute).abs() < 1e-10);
    println!("all three agree ✓");

    // --- §6: Plan₁ vs Plan₂ -------------------------------------------------
    println!("\n=== §6: two plans for ∃x∃y (R(x) ∧ S(x,y)) ===");
    let atoms = parse_cq("R(x), S(x,y)").unwrap().atoms().to_vec();
    let plan1 = Plan::project(
        [],
        Plan::join(Plan::Scan(atoms[0].clone()), Plan::Scan(atoms[1].clone())),
    );
    let plan2 = Plan::project(
        [],
        Plan::join(
            Plan::Scan(atoms[0].clone()),
            Plan::project([Var::new("x")], Plan::Scan(atoms[1].clone())),
        ),
    );
    let join_query = parse_fo("exists x. exists y. R(x) & S(x,y)").unwrap();
    let truth = brute_force_probability(&join_query, &db);
    let p1 = execute(&plan1, &db).boolean_prob();
    let p2 = execute(&plan2, &db).boolean_prob();
    println!("Plan₁ = {plan1}");
    println!("   result {p1:.10}   safe? {}", is_safe(&plan1));
    println!("Plan₂ = {plan2}");
    println!("   result {p2:.10}   safe? {}", is_safe(&plan2));
    println!("true probability     {truth:.10}");
    println!(
        "Plan₂ is exact ({}), Plan₁ over-estimates by {:+.2e} — yet is still \
         an upper bound, as Theorem 6.1 promises.",
        (p2 - truth).abs() < 1e-12,
        p1 - truth
    );
}
