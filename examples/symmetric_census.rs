//! Symmetric databases (§8): when the domain size is the whole input.
//!
//! A census-style population model where *every* individual behaves
//! identically a priori — precisely a symmetric database. `H₀`, the
//! #P-hard poster child of Theorem 2.2, becomes polynomial-time (the §8
//! closed form), and any FO² sentence is polynomial by Theorem 8.1 (the
//! cell algorithm with Skolemization).
//!
//! Run with `cargo run --release --example symmetric_census`.

use probdb::data::SymmetricDb;
use probdb::logic::parse_fo;
use probdb::symmetric::{h0_probability, wfomc_probability, Fo2Query};
use std::time::Instant;

fn main() {
    println!("=== §8: H₀ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)) on symmetric data ===");
    println!("(#P-hard on general databases — Theorem 2.2 — yet O(n²) here)\n");
    println!("{:>8} {:>16} {:>12}", "n", "p(H₀)", "time");
    for n in [10u64, 100, 500, 1000, 2000] {
        let t0 = Instant::now();
        let p = h0_probability(n, 0.3, 0.999, 0.3);
        println!("{n:>8} {p:>16.10} {:>10.2?}", t0.elapsed());
    }

    println!("\n=== Theorem 8.1: FO² sentences via the cell algorithm ===\n");
    let mut db = SymmetricDb::new(20);
    db.set_relation("Smokes", 1, 0.3)
        .set_relation("Friends", 2, 0.1);
    println!("{db}");

    // "Friends of smokers smoke" — the classic soft-logic sentence, asked
    // here as a hard sentence: what is the probability it holds exactly?
    let influence =
        Fo2Query::forall_forall(parse_fo("Smokes(x) & Friends(x,y) -> Smokes(y)").unwrap());
    let t0 = Instant::now();
    let p1 = wfomc_probability(&influence, &db);
    println!(
        "p(∀x∀y Smokes(x) ∧ Friends(x,y) → Smokes(y)) = {p1:.10}   ({:?})",
        t0.elapsed()
    );

    // "Everybody has a friend": ∀x∃y Friends(x,y), Skolemized internally
    // with a negative-weight predicate (the paper's [24]).
    let popular = Fo2Query::forall_exists(parse_fo("Friends(x,y)").unwrap());
    let t0 = Instant::now();
    let p2 = wfomc_probability(&popular, &db);
    let n = db.domain_size() as i32;
    let closed = (1.0 - (1.0 - 0.1f64).powi(n)).powi(n);
    println!(
        "p(∀x∃y Friends(x,y))                         = {p2:.10}   ({:?})",
        t0.elapsed()
    );
    println!("   closed form (1−(1−p)ⁿ)ⁿ                   = {closed:.10}");
    assert!((p2 - closed).abs() < 1e-8);

    println!(
        "\nThe cell algorithm reads only (n, p_R, p_S, …) — the #P₁ flavor \
         of symmetric PQE. With 3 variables the good news stops \
         (Theorem 8.2), but for FO² it is fully polynomial."
    );
}
