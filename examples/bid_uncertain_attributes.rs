//! Block-independent-disjoint databases: attribute-level uncertainty.
//!
//! §1 of the paper lists BID tables as the main studied alternative to
//! tuple-independence. Here a CRM has uncertain customer locations — each
//! customer lives in exactly one (or no known) city, with probabilities
//! from an entity-resolution model — and the analyst asks about exposure to
//! city-level events. Mutual exclusivity *within* a customer and
//! independence *across* customers is exactly the BID semantics, which a
//! plain TID cannot express.
//!
//! Run with `cargo run --example bid_uncertain_attributes`.

use probdb::bid::worlds::brute_force_probability;
use probdb::bid::{probability, BidDb};
use probdb::logic::parse_fo;

fn main() {
    // Customers 1..3; cities 10 = Paris, 11 = London, 12 = Berlin.
    let mut db = BidDb::new();
    // LivesIn(customer, city): key = customer (first column).
    db.insert("LivesIn", 1, [1, 10], 0.6);
    db.insert("LivesIn", 1, [1, 11], 0.3); // customer 1: Paris 60 % / London 30 % / unknown 10 %
    db.insert("LivesIn", 1, [2, 11], 0.8);
    db.insert("LivesIn", 1, [2, 12], 0.2); // customer 2: London or Berlin
    db.insert("LivesIn", 1, [3, 10], 0.5);
    // Strike(city): independent city-level events (blocks of size 1).
    db.insert("Strike", 1, [10], 0.7);
    db.insert("Strike", 1, [11], 0.2);
    db.insert("Strike", 1, [12], 0.4);

    println!("=== BID database (blocks are mutually exclusive) ===\n{db}");

    println!("{:<58} {:>10} {:>10}", "query", "selector", "brute");
    for q in [
        // Is some customer in a striking city?
        "exists x. exists c. LivesIn(x,c) & Strike(c)",
        // Are customers 1 and 2 in the same city?
        "exists c. LivesIn(1,c) & LivesIn(2,c)",
        // Does every located customer avoid strikes?
        "forall x. forall c. (LivesIn(x,c) -> !Strike(c))",
        // Customer 1 has a known city.
        "exists c. LivesIn(1,c)",
    ] {
        let fo = parse_fo(q).unwrap();
        let fast = probability(&fo, &db);
        let brute = brute_force_probability(&fo, &db);
        assert!((fast - brute).abs() < 1e-9);
        println!("{q:<58} {fast:>10.6} {brute:>10.6}");
    }

    println!(
        "\nNote the second query: within-block exclusivity makes\n\
         p(same city) = 0.3·0.8 (both London) = {:.3} — a TID with the same\n\
         marginals would wrongly also allow customer 1 in two cities at once.",
        0.3 * 0.8
    );
}
