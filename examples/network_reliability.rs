//! Probabilistic datalog: network reliability as transitive closure.
//!
//! The paper's §2 lists datalog programs (ProbLog) among the PQE query
//! languages, and §9 covers recursive queries. The classic instance: edges
//! fail independently; what is the probability that `t` stays reachable
//! from `s`? That is `p(Path(s,t))` under the two-rule transitive-closure
//! program — the engine derives every path's minimal edge supports and
//! hands the lineage to exact weighted model counting.
//!
//! Run with `cargo run --release --example network_reliability`.

use probdb::data::TupleDb;
use probdb::datalog::{parse_program, DatalogEngine};

fn main() {
    // A small data-center fabric: two spines (10, 11), three racks (20-22),
    // one gateway (0), with per-link availability.
    let mut db = TupleDb::new();
    let links: &[(u64, u64, f64)] = &[
        (0, 10, 0.99),
        (0, 11, 0.95),
        (10, 20, 0.9),
        (10, 21, 0.9),
        (11, 20, 0.8),
        (11, 21, 0.85),
        (11, 22, 0.9),
        (10, 22, 0.7),
        (20, 21, 0.6), // rack-to-rack crosslink
    ];
    for &(a, b, p) in links {
        db.insert("Edge", [a, b], p);
    }

    let program = parse_program(
        "
        # two-terminal reachability
        Path(x,y) <- Edge(x,y).
        Path(x,z) <- Path(x,y), Edge(y,z).
        ",
    )
    .expect("program parses");

    println!("=== probabilistic datalog: network reliability ===\n");
    println!("{} links, program:", links.len());
    for r in &program.rules {
        println!("  {r}");
    }

    let mut engine = DatalogEngine::new(&db, program);
    println!(
        "\n{:<14} {:>12} {:>18}",
        "gateway→rack", "p(reach)", "min. supports"
    );
    for rack in [20u64, 21, 22] {
        let t = probdb::data::Tuple::from([0, rack]);
        let p = engine.probability("Path", &t);
        let supports = engine.support_count("Path", &t);
        println!("{:<14} {:>12.8} {:>18}", format!("0 → {rack}"), p, supports);
    }

    // All derived facts at once.
    let facts = engine.facts("Path");
    println!(
        "\n{} reachability facts derived in total; the least reliable:",
        facts.len()
    );
    let mut sorted = facts.clone();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (t, p) in sorted.iter().take(3) {
        println!("  Path{t}  p = {p:.6}");
    }
    println!(
        "\nEach probability is exact weighted model counting over the\n\
         fact's minimal-support lineage — ProbLog's architecture (§9)."
    );
}
