//! Materialized views under a stream of probability updates.
//!
//! Registers the paper's Figure 1 query `∃x∃y (R(x) ∧ S(x,y))` as a
//! materialized view over a scaled-up instance, then streams probability
//! updates. Each update is absorbed by re-evaluating only the dirty path of
//! the compiled circuit (§7: lineage → DPLL trace → decision-DNNF); the
//! example times that against re-running the query from scratch and prints
//! the refresh latencies side by side.
//!
//! Run with `cargo run --release --example views_streaming`.

use probdb::views::{ViewDef, ViewManager};
use probdb::ProbDb;
use std::time::Instant;

const QUERY: &str = "exists x. exists y. R(x) & S(x,y)";

fn main() {
    // A Figure-1-shaped instance, scaled: n x-values, 3 S-partners each.
    let n: u64 = 300;
    let mut db = ProbDb::new();
    // Small per-tuple probabilities so the view's probability stays well
    // away from 1 and each update visibly moves it.
    for x in 0..n {
        db.insert("R", [x], 0.01 + 0.04 * (x % 7) as f64 / 7.0);
        for j in 0..3 {
            let y = n + 3 * x + j;
            db.insert("S", [x, y], 0.01 + 0.05 * (j as f64) / 3.0);
        }
    }
    println!(
        "database: {} possible tuples ({} R, {} S)",
        db.tuple_db().tuple_count(),
        n,
        3 * n
    );

    let mut mgr = ViewManager::new();
    let start = Instant::now();
    mgr.create("v", ViewDef::boolean(QUERY).unwrap(), &db)
        .unwrap();
    let build = start.elapsed();
    let view = mgr.get("v").unwrap();
    println!(
        "view v := {QUERY}\n  built in {:.2?} ({} row, backend: {})\n",
        build,
        view.rows().len(),
        view.backend_summary()
    );

    // Stream updates: walk S deterministically, nudging probabilities.
    println!(
        "{:>4}  {:>12}  {:>12}  {:>9}",
        "#", "incremental", "re-query", "speedup"
    );
    let (mut inc_total, mut full_total) = (0.0f64, 0.0f64);
    let updates = 40;
    for i in 0..updates {
        let x = (17 * i + 3) % n;
        let y = n + 3 * x + (i % 3);
        let p = 0.01 + 0.09 * ((i * 31) % 100) as f64 / 100.0;
        let tuple = probdb::data::Tuple::new(vec![x, y]);

        let t0 = Instant::now();
        let version = db.update_prob("S", &tuple, p).expect("tuple exists");
        let absorbed = mgr.on_update_prob("S", &tuple, p, version);
        let incremental = t0.elapsed();
        assert_eq!(absorbed, 1, "the view must absorb the update in place");
        let p_view = mgr.get("v").unwrap().boolean_answer().unwrap().probability;

        let t1 = Instant::now();
        let p_scratch = db.query(QUERY).unwrap().probability;
        let full = t1.elapsed();

        assert!(
            (p_view - p_scratch).abs() < 1e-9,
            "view {p_view} diverged from from-scratch {p_scratch}"
        );
        inc_total += incremental.as_secs_f64();
        full_total += full.as_secs_f64();
        if i < 5 || i == updates - 1 {
            println!(
                "{:>4}  {:>12.2?}  {:>12.2?}  {:>8.1}x",
                i,
                incremental,
                full,
                full.as_secs_f64() / incremental.as_secs_f64().max(1e-9)
            );
        } else if i == 5 {
            println!("   …");
        }
    }

    let view = mgr.get("v").unwrap();
    println!(
        "\n{updates} updates absorbed incrementally (view rebuilt {} time(s), p = {:.6})",
        view.rebuilds(),
        view.boolean_answer().unwrap().probability
    );
    println!(
        "mean latency: incremental {:.2?} vs re-query {:.2?} — {:.0}x faster",
        std::time::Duration::from_secs_f64(inc_total / updates as f64),
        std::time::Duration::from_secs_f64(full_total / updates as f64),
        full_total / inc_total.max(1e-12)
    );

    // An insert invalidates the compiled lineage: the view goes stale and
    // the next refresh rebuilds it from a fresh snapshot.
    db.insert("S", [0, 9_999], 0.5);
    mgr.on_insert("S", db.relation_version("S"));
    assert!(mgr.get("v").unwrap().is_stale());
    let t0 = Instant::now();
    mgr.refresh("v", &db).unwrap();
    println!(
        "\ninsert S(0, 9999) → view stale → rebuilt in {:.2?} (p = {:.6})",
        t0.elapsed(),
        mgr.get("v").unwrap().boolean_answer().unwrap().probability
    );
}
