//! Approximate answers on a #P-hard query: probabilistic deduplication.
//!
//! The intro motivates probabilistic databases with data cleaning and
//! deduplication. Here a noisy customer database has uncertain links
//! `SameAs(dup, canonical)` produced by an entity-resolution model, plus
//! `Flagged(dup)` (fraud heuristics) and `Vip(canonical)` (CRM data). The
//! analyst asks: *is some flagged duplicate actually a VIP?*
//!
//! `Q = ∃x∃y (Flagged(x) ∧ SameAs(x,y) ∧ Vip(y))`
//!
//! is exactly the non-hierarchical pattern `R(x), S(x,y), T(y)` — #P-hard
//! (Theorem 4.3). The engine still answers: exact grounded inference when
//! it fits the budget, otherwise Karp–Luby sampling *sandwiched by the §6
//! plan bounds* (Theorem 6.1).
//!
//! Run with `cargo run --release --example dedup_bounds`.

use probdb::{Method, ProbDb, QueryOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(n_dups: u64, n_canon: u64, link_density: f64, seed: u64) -> ProbDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = ProbDb::new();
    for d in 0..n_dups {
        db.insert("Flagged", [d], rng.gen_range(0.05..0.6));
    }
    for c in 0..n_canon {
        db.insert("Vip", [n_dups + c], rng.gen_range(0.01..0.3));
    }
    for d in 0..n_dups {
        for c in 0..n_canon {
            if rng.gen_bool(link_density) {
                db.insert("SameAs", [d, n_dups + c], rng.gen_range(0.2..0.95));
            }
        }
    }
    db
}

fn main() {
    let q = "exists x. exists y. Flagged(x) & SameAs(x,y) & Vip(y)";
    println!("=== probabilistic deduplication: {q} ===\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "dups", "links", "method", "lower", "estimate", "upper"
    );
    for (n_dups, n_canon, budget) in [
        (4u64, 3u64, 0u64), // small: exact grounded inference
        (10, 8, 0),         // still exact
        (18, 14, 20_000),   // budgeted: falls back to sampling+bounds
    ] {
        let db = build(n_dups, n_canon, 0.5, 42 + n_dups);
        let links = db
            .tuple_db()
            .relation("SameAs")
            .map(|r| r.len())
            .unwrap_or(0);
        let opts = QueryOptions {
            exact_budget: budget,
            samples: 100_000,
            ..Default::default()
        };
        let fo = probdb::logic::parse_fo(q).unwrap();
        let a = db.query_fo(&fo, &opts).expect("query evaluates");
        let (lo, hi) = a.bounds.unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{n_dups:>6} {links:>8} {:>12} {:>12} {:>12.6} {:>12}",
            format!("{:?}", a.method),
            if a.method == Method::Approximate {
                format!("{lo:.6}")
            } else {
                "—".into()
            },
            a.probability,
            if a.method == Method::Approximate {
                format!("{hi:.6}")
            } else {
                "—".into()
            },
        );
        if let Some(se) = a.std_error {
            println!("{:>27} (std error ±{se:.6})", "");
        }
        if a.method == Method::Approximate {
            assert!(lo <= a.probability + 0.05 && a.probability <= hi + 0.05);
        }
    }
    println!(
        "\nThe hard query never blocks the engine: exact when affordable, \
         guaranteed Theorem-6.1 bounds plus an unbiased estimate otherwise."
    );
}
