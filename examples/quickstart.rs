//! Quickstart: build a small probabilistic database and query it.
//!
//! Run with `cargo run --example quickstart`.

use probdb::{Complexity, ProbDb};

fn main() {
    // A tiny movie-recommendation TID: `Likes(user, movie)` holds with the
    // confidence of a noisy extractor; `Popular(movie)` comes from a
    // classifier.
    let mut db = ProbDb::new();
    // users 1..3, movies 10..13
    db.insert("Likes", [1, 10], 0.9);
    db.insert("Likes", [1, 11], 0.4);
    db.insert("Likes", [2, 11], 0.7);
    db.insert("Likes", [2, 12], 0.6);
    db.insert("Likes", [3, 12], 0.8);
    db.insert("Popular", [10], 0.5);
    db.insert("Popular", [11], 0.95);
    db.insert("Popular", [12], 0.2);

    println!("=== probdb quickstart ===\n");

    // A hierarchical (liftable) query: "some user likes a popular movie".
    let q1 = "exists u. exists m. Likes(u,m) & Popular(m)";
    let a1 = db.query(q1).expect("valid query");
    println!("Q1 = {q1}");
    println!("   p = {:.6}  (engine: {:?})\n", a1.probability, a1.method);

    // A Boolean fact query.
    let q2 = "Likes(1,10) & Popular(10)";
    let a2 = db.query(q2).expect("valid query");
    println!("Q2 = {q2}");
    println!("   p = {:.6}  (engine: {:?})\n", a2.probability, a2.method);

    // A universal (constraint-style) query: "every liked movie is popular".
    let q3 = "forall u. forall m. (Likes(u,m) -> Popular(m))";
    let a3 = db.query(q3).expect("valid query");
    println!("Q3 = {q3}");
    println!("   p = {:.6}  (engine: {:?})\n", a3.probability, a3.method);

    // The dichotomy classifier (Theorem 4.3): which queries are tractable?
    for (label, text) in [
        ("hierarchical", "Likes(u,m), Popular(m)"),
        ("non-hierarchical", "R(x), S(x,y), T(y)"),
    ] {
        let ucq = probdb::logic::parse_ucq(text).expect("valid UCQ");
        let c = db.classify(&ucq);
        let verdict = match c {
            Complexity::PolynomialTime => "polynomial time",
            Complexity::SharpPHard => "#P-hard",
            Complexity::Unknown => "unknown",
        };
        println!("classify[{label}] {text}  →  {verdict}");
    }
    println!();

    // A #P-hard query still gets an exact answer on small data (grounded
    // inference) …
    let mut hard = ProbDb::new();
    for x in 0..3u64 {
        hard.insert("R", [x], 0.5);
        hard.insert("T", [x + 3], 0.5);
        for y in 3..6u64 {
            hard.insert("S", [x, y], 0.5);
        }
    }
    let q4 = "exists x. exists y. R(x) & S(x,y) & T(y)";
    let a4 = hard.query(q4).expect("valid query");
    println!("Q4 = {q4}  (the dual of H₀, #P-hard in general)");
    println!("   p = {:.6}  (engine: {:?})", a4.probability, a4.method);
}
