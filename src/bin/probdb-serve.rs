//! `probdb-serve` — the concurrent TCP query service.
//!
//! ```text
//! $ cargo run --release --bin probdb-serve -- --addr 127.0.0.1:7171 --workers 8
//! probdb-serve listening on 127.0.0.1:7171 (8 workers)
//! $ printf 'insert R 1 0.5\nquery exists x. R(x)\nquit\n' | nc 127.0.0.1 7171
//! .
//! p = 0.500000  (engine: Lifted)
//! .
//! .
//! ```
//!
//! Speaks the same line protocol as `probdb-cli` (see
//! [`probdb::server::protocol`]); each response is terminated by a line
//! containing a single `.`. Options:
//!
//! - `--addr HOST:PORT` — bind address (default `127.0.0.1:7171`)
//! - `--workers N` — worker threads = max concurrent sessions (default 4)
//! - `--threads N` — engine thread-pool size shared by every query
//!   (parallel DPLL components, Karp–Luby chunks, answer rows, view
//!   builds); defaults to `PROBDB_THREADS`, else the hardware parallelism
//! - `--timeout-ms MS` — per-query wall-clock budget before degrading to
//!   the approximate engine; `0` disables (default 10000)
//! - `--cache-capacity N` — result-cache entries (default 1024)
//! - `--slowlog-threshold MS` — trace every query and capture any that
//!   takes at least MS milliseconds into the slowlog ring (`slowlog` /
//!   `trace last` commands); `0` captures every query. Off by default
//!   (spans then cost one atomic load each).
//! - `--preload FILE` — run a script of commands (typically `insert`/
//!   `domain` lines) before accepting connections
//! - `--data-dir DIR` — serve durably: recover from `DIR` on start, WAL
//!   every mutation before acknowledging it, checkpoint in the background
//! - `--fsync always|never|interval:MS` — WAL fsync policy (default
//!   `always`; only meaningful with `--data-dir`)
//! - `--checkpoint-every N` — snapshot + truncate the log every N records
//!   (`0` disables; default 1024; only meaningful with `--data-dir`)
//! - `--replica-of HOST:PORT` — serve as a **read-only replica**: bootstrap
//!   from the primary's snapshot, then continuously apply its replicated
//!   WAL stream. Serves every query command; refuses writes with a typed
//!   error. Incompatible with `--data-dir` and `--preload` (the replica's
//!   state belongs to the primary).
//!
//! `SIGTERM`/`SIGINT` trigger the same graceful path as the wire
//! `shutdown` command: drain in-flight sessions, flush + fsync the WAL,
//! then exit. A durable primary also broadcasts a shutdown frame to its
//! replicas so they mark it down immediately.

use probdb::replica::{start_replica, ReplicaHandle, ReplicaOptions, ReplicaStatus, TcpConnector};
use probdb::server::protocol::{parse_command, Command};
use probdb::server::{serve_service, ServerOptions, Service, ServiceOptions};
use probdb::store::{FsyncPolicy, RealFs, Store, StoreOptions};
use probdb::ProbDb;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: probdb-serve [--addr HOST:PORT] [--workers N] [--threads N] \
         [--timeout-ms MS] [--cache-capacity N] [--slowlog-threshold MS] \
         [--preload FILE] \
         [--data-dir DIR] [--fsync always|never|interval:MS] [--checkpoint-every N] \
         [--replica-of HOST:PORT]"
    );
    std::process::exit(2);
}

struct Args {
    opts: ServerOptions,
    preload: Option<String>,
    data_dir: Option<PathBuf>,
    store_opts: StoreOptions,
    replica_of: Option<String>,
    slowlog_threshold: Option<Duration>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        opts: ServerOptions::default(),
        preload: None,
        data_dir: None,
        store_opts: StoreOptions::default(),
        replica_of: None,
        slowlog_threshold: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => parsed.opts.addr = value("--addr"),
            "--workers" => {
                parsed.opts.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--threads" => {
                let n: usize = value("--threads").parse().unwrap_or_else(|_| usage());
                // Must win the race with first pool use, so it is set here —
                // before the preload script or server issue any query.
                if !probdb::par::configure_global_threads(n) {
                    eprintln!("--threads: engine pool already initialized; flag ignored");
                }
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms").parse().unwrap_or_else(|_| usage());
                parsed.opts.query_timeout = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                parsed.opts.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--slowlog-threshold" => {
                let ms: u64 = value("--slowlog-threshold")
                    .parse()
                    .unwrap_or_else(|_| usage());
                parsed.slowlog_threshold = Some(Duration::from_millis(ms));
            }
            "--preload" => parsed.preload = Some(value("--preload")),
            "--replica-of" => parsed.replica_of = Some(value("--replica-of")),
            "--data-dir" => parsed.data_dir = Some(PathBuf::from(value("--data-dir"))),
            "--fsync" => {
                parsed.store_opts.fsync =
                    FsyncPolicy::parse(&value("--fsync")).unwrap_or_else(|| {
                        eprintln!("--fsync: expected always, never, or interval:MS");
                        usage()
                    })
            }
            "--checkpoint-every" => {
                parsed.store_opts.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    parsed
}

/// Set by the signal handler; the main loop polls it and initiates the
/// same graceful shutdown the wire `shutdown` command performs.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the C standard library function; the handler is a
    // non-capturing `extern "C" fn(i32)` whose body performs exactly one
    // atomic store into a `static`, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Applies a preload script through the service layer — so with
/// `--data-dir` every preloaded mutation is WAL-logged exactly like one
/// arriving over the wire. Query-like commands run too (their output goes
/// to stderr) so a script can sanity-check itself.
fn preload(service: &Service, path: &str) -> Result<u64, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut applied = 0u64;
    for (lineno, line) in content.lines().enumerate() {
        let at = |msg: &str| format!("{path}:{}: {msg}", lineno + 1);
        match parse_command(line).map_err(|e| at(&e))? {
            Command::Nothing => {}
            Command::Insert { .. } | Command::Domain(_) => {
                let (response, _) = service.handle_line(line);
                if !response.is_empty() {
                    // A durable store refusing the write (wedged WAL, full
                    // disk) must abort startup, not serve a silent subset.
                    return Err(at(response.trim_end()));
                }
                applied += 1;
            }
            Command::Query(_) => {
                let (response, _) = service.handle_line(line);
                eprintln!("{path}: {}", response.trim_end());
            }
            other => return Err(at(&format!("{other:?} is not allowed in a preload script"))),
        }
    }
    Ok(applied)
}

fn main() {
    let args = parse_args();
    install_signal_handlers();
    let service_opts = ServiceOptions {
        query_timeout: args.opts.query_timeout,
        cache_capacity: args.opts.cache_capacity,
        slowlog_threshold: args.slowlog_threshold,
        ..ServiceOptions::default()
    };
    let mut replica_client: Option<ReplicaHandle> = None;
    let service = if let Some(primary) = &args.replica_of {
        if args.data_dir.is_some() || args.preload.is_some() {
            eprintln!("--replica-of is incompatible with --data-dir and --preload: a replica's state comes from its primary");
            std::process::exit(2);
        }
        let status = Arc::new(ReplicaStatus::new());
        let service = Service::new_replica(primary.clone(), Arc::clone(&status), service_opts);
        replica_client = Some(start_replica(
            Arc::new(service.clone()),
            Box::new(TcpConnector::new(primary.clone())),
            status,
            ReplicaOptions::default(),
        ));
        eprintln!("replicating from {primary} (read-only)");
        service
    } else {
        match &args.data_dir {
            Some(dir) => match Store::open(Arc::new(RealFs), dir, args.store_opts.clone()) {
                Ok((store, recovered)) => {
                    let info = &recovered.info;
                    eprintln!(
                    "recovered {}: snapshot lsn {}, {} op(s) replayed, {} torn byte(s) dropped, next lsn {}",
                    dir.display(),
                    info.snapshot_lsn,
                    info.replayed_ops,
                    info.truncated_bytes,
                    info.next_lsn,
                );
                    Service::with_store(recovered.db, recovered.views, store, service_opts)
                }
                Err(e) => {
                    eprintln!("cannot open data dir {}: {e}", dir.display());
                    std::process::exit(1);
                }
            },
            None => Service::new(ProbDb::new(), service_opts),
        }
    };
    if let Some(path) = &args.preload {
        match preload(&service, path) {
            Ok(applied) => eprintln!("preloaded {applied} mutation(s) from {path}"),
            Err(e) => {
                eprintln!("preload failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let workers = args.opts.workers;
    match serve_service(service, args.opts) {
        Ok(handle) => {
            eprintln!(
                "probdb-serve listening on {} ({} workers, engine pool: {} threads{})",
                handle.local_addr(),
                workers,
                probdb::par::global().threads(),
                if args.data_dir.is_some() {
                    ", durable"
                } else if args.replica_of.is_some() {
                    ", read-only replica"
                } else {
                    ""
                }
            );
            // Poll instead of blocking in join(): a signal must be able to
            // start the drain, and is_finished() tells us when it is done.
            loop {
                if TERM.swap(false, Ordering::SeqCst) && !handle.service().stopping() {
                    eprintln!("signal received: draining sessions and flushing the log");
                    // Same code path as the wire command — flushes + fsyncs
                    // the WAL, sets the stop flag, wakes the acceptors.
                    let _ = handle.service().handle_line("shutdown");
                }
                if handle.is_finished() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            // Belt and braces: `shutdown` already flushed, but a worker may
            // have acknowledged one last interval-policy write after it.
            if !handle.service().persist_flush() {
                eprintln!("probdb-serve: final log flush failed");
            }
            // Stop the replication client before the final summary so its
            // thread is not mid-apply while the process tears down.
            if let Some(mut client) = replica_client.take() {
                client.stop();
            }
            handle.join();
        }
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    }
}
