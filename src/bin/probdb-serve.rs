//! `probdb-serve` — the concurrent TCP query service.
//!
//! ```text
//! $ cargo run --release --bin probdb-serve -- --addr 127.0.0.1:7171 --workers 8
//! probdb-serve listening on 127.0.0.1:7171 (8 workers)
//! $ printf 'insert R 1 0.5\nquery exists x. R(x)\nquit\n' | nc 127.0.0.1 7171
//! .
//! p = 0.500000  (engine: Lifted)
//! .
//! .
//! ```
//!
//! Speaks the same line protocol as `probdb-cli` (see
//! [`probdb::server::protocol`]); each response is terminated by a line
//! containing a single `.`. Options:
//!
//! - `--addr HOST:PORT` — bind address (default `127.0.0.1:7171`)
//! - `--workers N` — worker threads = max concurrent sessions (default 4)
//! - `--threads N` — engine thread-pool size shared by every query
//!   (parallel DPLL components, Karp–Luby chunks, answer rows, view
//!   builds); defaults to `PROBDB_THREADS`, else the hardware parallelism
//! - `--timeout-ms MS` — per-query wall-clock budget before degrading to
//!   the approximate engine; `0` disables (default 10000)
//! - `--cache-capacity N` — result-cache entries (default 1024)
//! - `--preload FILE` — run a script of commands (typically `insert`/
//!   `domain` lines) before accepting connections

use probdb::server::protocol::parse_command;
use probdb::server::{serve, ServerOptions};
use probdb::ProbDb;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: probdb-serve [--addr HOST:PORT] [--workers N] [--threads N] \
         [--timeout-ms MS] [--cache-capacity N] [--preload FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerOptions, Option<String>) {
    let mut opts = ServerOptions::default();
    let mut preload = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--workers" => opts.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                let n: usize = value("--threads").parse().unwrap_or_else(|_| usage());
                // Must win the race with first pool use, so it is set here —
                // before the preload script or server issue any query.
                if !probdb::par::configure_global_threads(n) {
                    eprintln!("--threads: engine pool already initialized; flag ignored");
                }
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms").parse().unwrap_or_else(|_| usage());
                opts.query_timeout = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                opts.cache_capacity = value("--cache-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--preload" => preload = Some(value("--preload")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    (opts, preload)
}

/// Applies a preload script to the database; query-like commands run too
/// (their output goes to stderr) so a script can sanity-check itself.
fn preload_db(db: &mut ProbDb, path: &str) -> Result<(), String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    for (lineno, line) in content.lines().enumerate() {
        match parse_command(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))? {
            probdb::server::protocol::Command::Insert {
                relation,
                tuple,
                prob,
            } => db.insert(&relation, tuple, prob),
            probdb::server::protocol::Command::Domain(consts) => db.extend_domain(consts),
            probdb::server::protocol::Command::Nothing => {}
            probdb::server::protocol::Command::Query(q) => match db.query(&q) {
                Ok(a) => eprintln!("{path}: query -> p = {:.6}", a.probability),
                Err(e) => eprintln!("{path}: query error: {e}"),
            },
            other => {
                return Err(format!(
                    "{path}:{}: {other:?} is not allowed in a preload script",
                    lineno + 1
                ))
            }
        }
    }
    Ok(())
}

fn main() {
    let (opts, preload) = parse_args();
    let mut db = ProbDb::new();
    if let Some(path) = preload {
        if let Err(e) = preload_db(&mut db, &path) {
            eprintln!("preload failed: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "preloaded {} tuples from {path}",
            db.tuple_db().tuple_count()
        );
    }
    let workers = opts.workers;
    match serve(db, opts) {
        Ok(handle) => {
            eprintln!(
                "probdb-serve listening on {} ({} workers, engine pool: {} threads)",
                handle.local_addr(),
                workers,
                probdb::par::global().threads()
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    }
}
