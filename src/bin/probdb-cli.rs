//! `probdb-cli` — an interactive shell for the probabilistic database.
//!
//! ```text
//! $ cargo run --bin probdb-cli
//! probdb> insert R 1 0.5
//! probdb> insert S 1 2 0.8
//! probdb> query exists x. exists y. R(x) & S(x,y)
//! p = 0.400000  (engine: Lifted)
//! probdb> answers x : R(x), S(x,y)
//! x = 1    p = 0.400000
//! probdb> classify R(x), S(x,y), T(y)
//! #P-hard
//! ```
//!
//! Also accepts a script on stdin (`probdb-cli < script.pdb`) and
//! `source <file>` inside the shell.

use probdb::{Complexity, ProbDb, QueryOptions};
use std::io::{BufRead, Write};

/// One parsed shell command.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    /// `insert <rel> <c1> … <ck> <prob>`
    Insert {
        relation: String,
        tuple: Vec<u64>,
        prob: f64,
    },
    /// `domain <c1> … <ck>` — extend the domain explicitly.
    Domain(Vec<u64>),
    /// `query <fo sentence>`
    Query(String),
    /// `answers <v1,v2,…> : <cq>` — non-Boolean query.
    Answers { head: Vec<String>, cq: String },
    /// `classify <ucq>`
    Classify(String),
    /// `open <lambda> <monotone fo>` — open-world interval.
    OpenWorld { lambda: f64, query: String },
    /// `show` — dump the database.
    Show,
    /// `source <path>` — run commands from a file.
    Source(String),
    /// `help`
    Help,
    /// `quit` / `exit`
    Quit,
    /// Blank line or comment.
    Nothing,
}

/// Parses one line into a command.
fn parse_command(line: &str) -> Result<Command, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Command::Nothing);
    }
    let (head, rest) = match line.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim()),
        None => (line, ""),
    };
    match head {
        "insert" => {
            let mut parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() < 2 {
                return Err("usage: insert <rel> <c1> … <ck> <prob>".into());
            }
            let relation = parts.remove(0).to_string();
            let prob: f64 = parts
                .pop()
                .unwrap()
                .parse()
                .map_err(|_| "probability must be a number".to_string())?;
            let tuple = parts
                .iter()
                .map(|p| p.parse::<u64>().map_err(|_| format!("bad constant {p}")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Insert {
                relation,
                tuple,
                prob,
            })
        }
        "domain" => {
            let consts = rest
                .split_whitespace()
                .map(|p| p.parse::<u64>().map_err(|_| format!("bad constant {p}")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Command::Domain(consts))
        }
        "query" => {
            if rest.is_empty() {
                return Err("usage: query <sentence>".into());
            }
            Ok(Command::Query(rest.to_string()))
        }
        "answers" => {
            let (head_vars, cq) = rest
                .split_once(':')
                .ok_or_else(|| "usage: answers <v1,v2,…> : <cq>".to_string())?;
            let head = head_vars
                .split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect::<Vec<_>>();
            if head.is_empty() {
                return Err("answers needs at least one head variable".into());
            }
            Ok(Command::Answers {
                head,
                cq: cq.trim().to_string(),
            })
        }
        "classify" => Ok(Command::Classify(rest.to_string())),
        "open" => {
            let (lambda, query) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| "usage: open <lambda> <monotone sentence>".to_string())?;
            let lambda: f64 = lambda
                .parse()
                .map_err(|_| "λ must be a number".to_string())?;
            Ok(Command::OpenWorld {
                lambda,
                query: query.trim().to_string(),
            })
        }
        "show" => Ok(Command::Show),
        "source" => Ok(Command::Source(rest.to_string())),
        "help" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        other => Err(format!("unknown command {other:?}; try `help`")),
    }
}

const HELP: &str = "\
commands:
  insert <rel> <c1> … <ck> <p>   add a tuple with probability p
  domain <c1> … <ck>             extend the domain (matters for ∀)
  query <sentence>               Boolean query, e.g. exists x. R(x) & S(x,y)
  answers <v,…> : <cq>           non-Boolean CQ, e.g. answers x : R(x), S(x,y)
  classify <ucq>                 dichotomy classification
  open <λ> <sentence>            open-world interval for a monotone query
  show                           print the database
  source <file>                  run commands from a file
  quit                           leave";

/// Executes one command against the engine. Returns false to quit.
fn execute(cmd: Command, db: &mut ProbDb, out: &mut dyn Write) -> std::io::Result<bool> {
    match cmd {
        Command::Nothing => {}
        Command::Quit => return Ok(false),
        Command::Help => writeln!(out, "{HELP}")?,
        Command::Insert {
            relation,
            tuple,
            prob,
        } => db.insert(&relation, tuple, prob),
        Command::Domain(consts) => db.extend_domain(consts),
        Command::Show => write!(out, "{}", db.tuple_db())?,
        Command::Query(q) => match db.query(&q) {
            Ok(a) => {
                write!(out, "p = {:.6}  (engine: {:?})", a.probability, a.method)?;
                if let Some((lo, hi)) = a.bounds {
                    write!(out, "  bounds [{lo:.6}, {hi:.6}]")?;
                }
                writeln!(out)?;
            }
            Err(e) => writeln!(out, "error: {e}")?,
        },
        Command::Answers { head, cq } => match probdb::logic::parse_cq(&cq) {
            Ok(parsed) => {
                let vars: Vec<probdb::logic::Var> =
                    head.iter().map(|v| probdb::logic::Var::new(v)).collect();
                match db.query_answers(&parsed, &vars, &QueryOptions::default()) {
                    Ok(answers) if answers.is_empty() => writeln!(out, "(no answers)")?,
                    Ok(answers) => {
                        for a in answers {
                            let binding: Vec<String> = head
                                .iter()
                                .zip(&a.values)
                                .map(|(v, c)| format!("{v} = {c}"))
                                .collect();
                            writeln!(
                                out,
                                "{}    p = {:.6}",
                                binding.join(", "),
                                a.probability
                            )?;
                        }
                    }
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Classify(q) => match probdb::logic::parse_ucq(&q) {
            Ok(ucq) => {
                let verdict = match db.classify(&ucq) {
                    Complexity::PolynomialTime => "polynomial time",
                    Complexity::SharpPHard => "#P-hard",
                    Complexity::Unknown => "unknown (rules inconclusive)",
                };
                writeln!(out, "{verdict}")?;
            }
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::OpenWorld { lambda, query } => match probdb::logic::parse_fo(&query) {
            Ok(fo) => match db.query_open_world(&fo, lambda, &QueryOptions::default()) {
                Ok((lo, hi)) => writeln!(
                    out,
                    "p ∈ [{:.6}, {:.6}]  (closed-world, λ-completion)",
                    lo.probability, hi.probability
                )?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Source(path) => match std::fs::read_to_string(&path) {
            Ok(content) => {
                for line in content.lines() {
                    match parse_command(line) {
                        Ok(cmd) => {
                            if !execute(cmd, db, out)? {
                                return Ok(false);
                            }
                        }
                        Err(e) => writeln!(out, "error in {path}: {e}")?,
                    }
                }
            }
            Err(e) => writeln!(out, "cannot read {path}: {e}")?,
        },
    }
    Ok(true)
}

fn main() -> std::io::Result<()> {
    let mut db = ProbDb::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::args().all(|a| a != "--batch");
    if interactive {
        writeln!(stdout, "probdb — type `help` for commands")?;
    }
    loop {
        if interactive {
            write!(stdout, "probdb> ")?;
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match parse_command(&line) {
            Ok(cmd) => {
                if !execute(cmd, &mut db, &mut stdout)? {
                    break;
                }
            }
            Err(e) => writeln!(stdout, "error: {e}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inserts() {
        assert_eq!(
            parse_command("insert R 1 2 0.5").unwrap(),
            Command::Insert {
                relation: "R".into(),
                tuple: vec![1, 2],
                prob: 0.5
            }
        );
        assert!(parse_command("insert R").is_err());
        assert!(parse_command("insert R x 0.5").is_err());
    }

    #[test]
    fn parses_queries_and_misc() {
        assert_eq!(
            parse_command("query exists x. R(x)").unwrap(),
            Command::Query("exists x. R(x)".into())
        );
        assert_eq!(
            parse_command("answers x, y : R(x), S(x,y)").unwrap(),
            Command::Answers {
                head: vec!["x".into(), "y".into()],
                cq: "R(x), S(x,y)".into()
            }
        );
        assert_eq!(parse_command("  # comment").unwrap(), Command::Nothing);
        assert_eq!(parse_command("").unwrap(), Command::Nothing);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert!(parse_command("frobnicate").is_err());
    }

    #[test]
    fn end_to_end_session() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        for line in [
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "query exists x. exists y. R(x) & S(x,y)",
            "classify R(x), S(x,y), T(y)",
            "answers x : R(x), S(x,y)",
        ] {
            let cmd = parse_command(line).unwrap();
            assert!(execute(cmd, &mut db, &mut out).unwrap());
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("#P-hard"), "{text}");
        assert!(text.contains("x = 1"), "{text}");
    }

    #[test]
    fn open_world_command() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        for line in [
            "insert R 0 0.5",
            "domain 0 1",
            "open 0.2 exists x. R(x)",
        ] {
            let cmd = parse_command(line).unwrap();
            assert!(execute(cmd, &mut db, &mut out).unwrap());
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("p ∈ ["), "{text}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        let cmd = parse_command("query R(x").unwrap();
        assert!(execute(cmd, &mut db, &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }
}
