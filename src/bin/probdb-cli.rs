//! `probdb-cli` — an interactive shell for the probabilistic database.
//!
//! ```text
//! $ cargo run --bin probdb-cli
//! probdb> insert R 1 0.5
//! probdb> insert S 1 2 0.8
//! probdb> query exists x. exists y. R(x) & S(x,y)
//! p = 0.400000  (engine: Lifted)
//! probdb> answers x : R(x), S(x,y)
//! x = 1    p = 0.400000
//! probdb> classify R(x), S(x,y), T(y)
//! #P-hard
//! ```
//!
//! Also accepts a script on stdin (`probdb-cli < script.pdb`) and
//! `source <file>` inside the shell.
//!
//! The command language (parser, help text, answer formatting) lives in
//! [`probdb::server::protocol`] and is shared with the TCP server
//! (`probdb-serve`), so both front ends accept identical input and print
//! identical answers.

use probdb::server::protocol::{
    format_answer, format_answer_tuples, format_complexity, format_open, parse_command, Command,
    HELP,
};
use probdb::{ProbDb, QueryOptions};
use std::io::{BufRead, Write};

/// Executes one command against the engine. Returns false to quit.
fn execute(cmd: Command, db: &mut ProbDb, out: &mut dyn Write) -> std::io::Result<bool> {
    match cmd {
        Command::Nothing => {}
        Command::Quit => return Ok(false),
        Command::Help => writeln!(out, "{HELP}")?,
        Command::Stats => writeln!(
            out,
            "stats are tracked by probdb-serve; this CLI keeps no counters"
        )?,
        Command::Insert {
            relation,
            tuple,
            prob,
        } => db.insert(&relation, tuple, prob),
        Command::Domain(consts) => db.extend_domain(consts),
        Command::Show => write!(out, "{}", db.tuple_db())?,
        Command::Query(q) => match db.query(&q) {
            Ok(a) => write!(out, "{}", format_answer(&a))?,
            Err(e) => writeln!(out, "error: {e}")?,
        },
        Command::Answers { head, cq } => match probdb::logic::parse_cq(&cq) {
            Ok(parsed) => {
                let vars: Vec<probdb::logic::Var> =
                    head.iter().map(|v| probdb::logic::Var::new(v)).collect();
                match db.query_answers(&parsed, &vars, &QueryOptions::default()) {
                    Ok(answers) => write!(out, "{}", format_answer_tuples(&head, &answers))?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Classify(q) => match probdb::logic::parse_ucq(&q) {
            Ok(ucq) => writeln!(out, "{}", format_complexity(db.classify(&ucq)))?,
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::OpenWorld { lambda, query } => match probdb::logic::parse_fo(&query) {
            Ok(fo) => match db.query_open_world(&fo, lambda, &QueryOptions::default()) {
                Ok((lo, hi)) => write!(out, "{}", format_open(&lo, &hi))?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Source(path) => match std::fs::read_to_string(&path) {
            Ok(content) => {
                for line in content.lines() {
                    match parse_command(line) {
                        Ok(cmd) => {
                            if !execute(cmd, db, out)? {
                                return Ok(false);
                            }
                        }
                        Err(e) => writeln!(out, "error in {path}: {e}")?,
                    }
                }
            }
            Err(e) => writeln!(out, "cannot read {path}: {e}")?,
        },
    }
    Ok(true)
}

fn main() -> std::io::Result<()> {
    let mut db = ProbDb::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::args().all(|a| a != "--batch");
    if interactive {
        writeln!(stdout, "probdb — type `help` for commands")?;
    }
    loop {
        if interactive {
            write!(stdout, "probdb> ")?;
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match parse_command(&line) {
            Ok(cmd) => {
                if !execute(cmd, &mut db, &mut stdout)? {
                    break;
                }
            }
            Err(e) => writeln!(stdout, "error: {e}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_session() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        for line in [
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "query exists x. exists y. R(x) & S(x,y)",
            "classify R(x), S(x,y), T(y)",
            "answers x : R(x), S(x,y)",
        ] {
            let cmd = parse_command(line).unwrap();
            assert!(execute(cmd, &mut db, &mut out).unwrap());
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("#P-hard"), "{text}");
        assert!(text.contains("x = 1"), "{text}");
    }

    #[test]
    fn open_world_command() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        for line in ["insert R 0 0.5", "domain 0 1", "open 0.2 exists x. R(x)"] {
            let cmd = parse_command(line).unwrap();
            assert!(execute(cmd, &mut db, &mut out).unwrap());
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("p ∈ ["), "{text}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        let cmd = parse_command("query R(x").unwrap();
        assert!(execute(cmd, &mut db, &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("error"));
    }

    #[test]
    fn stats_points_at_the_server() {
        let mut db = ProbDb::new();
        let mut out = Vec::new();
        let cmd = parse_command("stats").unwrap();
        assert!(execute(cmd, &mut db, &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("probdb-serve"));
    }

    /// The CLI must print exactly what the server's service layer returns
    /// for the same commands — both delegate to the shared formatters.
    #[test]
    fn cli_and_service_render_identically() {
        use probdb::server::{Service, ServiceOptions};
        let script = [
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "insert S 1 3 0.25",
            "query exists x. exists y. R(x) & S(x,y)",
            "classify R(x), S(x,y), T(y)",
            "answers x : R(x), S(x,y)",
            "show",
            "query R(x) @@@",
        ];
        let mut db = ProbDb::new();
        let service = Service::new(
            ProbDb::new(),
            ServiceOptions {
                query_timeout: std::time::Duration::ZERO,
                ..ServiceOptions::default()
            },
        );
        for line in script {
            let mut cli_out = Vec::new();
            execute(parse_command(line).unwrap(), &mut db, &mut cli_out).unwrap();
            let (service_out, _) = service.handle_line(line);
            assert_eq!(
                String::from_utf8(cli_out).unwrap(),
                service_out,
                "divergence on {line:?}"
            );
        }
    }
}
