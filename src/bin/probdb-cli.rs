//! `probdb-cli` — an interactive shell for the probabilistic database.
//!
//! ```text
//! $ cargo run --bin probdb-cli
//! probdb> insert R 1 0.5
//! probdb> insert S 1 2 0.8
//! probdb> query exists x. exists y. R(x) & S(x,y)
//! p = 0.400000  (engine: Lifted)
//! probdb> answers x : R(x), S(x,y)
//! x = 1    p = 0.400000
//! probdb> classify R(x), S(x,y), T(y)
//! #P-hard
//! ```
//!
//! Also accepts a script on stdin (`probdb-cli < script.pdb`) and
//! `source <file>` inside the shell.
//!
//! The command language (parser, help text, answer formatting) lives in
//! [`probdb::server::protocol`] and is shared with the TCP server
//! (`probdb-serve`), so both front ends accept identical input and print
//! identical answers.

use probdb::server::protocol::{
    format_answer, format_answer_tuples, format_complexity, format_open, format_update_missing,
    format_view_created, format_view_list, format_view_refreshed, format_view_show, parse_command,
    Command, ViewCommand, ViewQueryText, HELP,
};
use probdb::views::{ViewDef, ViewManager};
use probdb::{ProbDb, QueryOptions};
use std::io::{BufRead, Write};

/// Executes one command against the engine. Returns false to quit.
///
/// Mutations are mirrored into the [`ViewManager`] via the versioned event
/// protocol, exactly like `probdb-serve` does, so materialized views stay
/// maintained in the shell too.
fn execute(
    cmd: Command,
    db: &mut ProbDb,
    views: &mut ViewManager,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    match cmd {
        Command::Nothing => {}
        Command::Quit => return Ok(false),
        Command::Help => writeln!(out, "{HELP}")?,
        Command::Stats => writeln!(
            out,
            "stats are tracked by probdb-serve; this CLI keeps no counters"
        )?,
        Command::Metrics => {
            // Same registry the server scrapes: register every crate's
            // families (idempotent), mirror externally-tracked stats, and
            // render the Prometheus text exposition for this process.
            probdb::store::metrics::register();
            probdb::replica::metrics::register();
            probdb::kernel::metrics::register();
            probdb::views::metrics::register();
            probdb::par::metrics::register();
            probdb::kernel::metrics::publish();
            probdb::par::metrics::publish(&probdb::par::current().stats());
            probdb::views::metrics::publish(views.len());
            write!(out, "{}", probdb::obs::render())?;
        }
        Command::ExplainAnalyze(q) => {
            // Trace the evaluation locally: the engine stages inside
            // `db.query` record themselves under this root span.
            let tracer = probdb::obs::Tracer::new();
            let result = probdb::obs::with_tracer(&tracer, || {
                let mut root = probdb::obs::span(probdb::obs::Stage::Query);
                root.set_str("query", q.clone());
                let r = db.query(&q);
                if let Ok(a) = &r {
                    root.set_str("engine", format!("{:?}", a.method));
                }
                r
            });
            match result {
                Ok(a) => write!(out, "{}", format_answer(&a))?,
                Err(e) => writeln!(out, "error: {e}")?,
            }
            write!(out, "{}", tracer.render_text())?;
        }
        Command::TraceLast { .. } => writeln!(
            out,
            "traces are kept by probdb-serve; use `explain analyze <query>` here"
        )?,
        Command::Slowlog => writeln!(
            out,
            "the slowlog is kept by probdb-serve (start it with --slowlog-threshold)"
        )?,
        Command::Insert {
            relation,
            tuple,
            prob,
        } => {
            db.insert(&relation, tuple, prob);
            views.on_insert(&relation, db.relation_version(&relation));
        }
        Command::Update {
            relation,
            tuple,
            prob,
        } => {
            let t = probdb::data::Tuple::new(tuple.clone());
            match db.update_prob(&relation, &t, prob) {
                Some(version) => {
                    views.on_update_prob(&relation, &t, prob, version);
                }
                None => write!(out, "{}", format_update_missing(&relation, &tuple))?,
            }
        }
        Command::View(cmd) => execute_view(cmd, db, views, out)?,
        Command::Domain(consts) => {
            db.extend_domain(consts);
            views.on_domain_extend();
        }
        Command::Show => write!(out, "{}", db.tuple_db())?,
        Command::Query(q) => match db.query(&q) {
            Ok(a) => write!(out, "{}", format_answer(&a))?,
            Err(e) => writeln!(out, "error: {e}")?,
        },
        Command::Answers { head, cq } => match probdb::logic::parse_cq(&cq) {
            Ok(parsed) => {
                let vars: Vec<probdb::logic::Var> =
                    head.iter().map(|v| probdb::logic::Var::new(v)).collect();
                match db.query_answers(&parsed, &vars, &QueryOptions::default()) {
                    Ok(answers) => write!(out, "{}", format_answer_tuples(&head, &answers))?,
                    Err(e) => writeln!(out, "error: {e}")?,
                }
            }
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Classify(q) => match probdb::logic::parse_ucq(&q) {
            Ok(ucq) => writeln!(out, "{}", format_complexity(db.classify(&ucq)))?,
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::OpenWorld { lambda, query } => match probdb::logic::parse_fo(&query) {
            Ok(fo) => match db.query_open_world(&fo, lambda, &QueryOptions::default()) {
                Ok((lo, hi)) => write!(out, "{}", format_open(&lo, &hi))?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            Err(e) => writeln!(out, "parse error: {e}")?,
        },
        Command::Save(path) => {
            let states = views.export_states();
            let bytes = probdb::store::snapshot::encode_snapshot(db.version(), db, &states);
            match std::fs::write(&path, bytes) {
                Ok(()) => writeln!(
                    out,
                    "saved {} tuple(s), {} view(s) to {path}",
                    db.tuple_db().tuple_count(),
                    states.len()
                )?,
                Err(e) => writeln!(out, "error: cannot write {path}: {e}")?,
            }
        }
        Command::Open(path) => match std::fs::read(&path) {
            Ok(bytes) => match probdb::store::snapshot::decode_snapshot(&bytes) {
                Ok((_lsn, opened_db, states)) => {
                    let view_count = states.len();
                    match ViewManager::import_states(states) {
                        Ok(opened_views) => {
                            // Replace the whole session state; restored
                            // views keep their compiled circuits, so they
                            // resume incremental maintenance immediately.
                            *db = opened_db;
                            *views = opened_views;
                            writeln!(
                                out,
                                "opened {path}: {} tuple(s), {view_count} view(s)",
                                db.tuple_db().tuple_count()
                            )?;
                        }
                        Err(e) => writeln!(out, "error: cannot restore views from {path}: {e}")?,
                    }
                }
                Err(e) => writeln!(out, "error: {path} is not a probdb snapshot: {e}")?,
            },
            Err(e) => writeln!(out, "error: cannot read {path}: {e}")?,
        },
        Command::Shutdown => {
            writeln!(out, "shutdown stops probdb-serve; this CLI exits with quit")?
        }
        Command::WalInspect(path) => inspect_wal(&path, out)?,
        Command::Source(path) => match std::fs::read_to_string(&path) {
            Ok(content) => {
                for line in content.lines() {
                    match parse_command(line) {
                        Ok(cmd) => {
                            if !execute(cmd, db, views, out)? {
                                return Ok(false);
                            }
                        }
                        Err(e) => writeln!(out, "error in {path}: {e}")?,
                    }
                }
            }
            Err(e) => writeln!(out, "cannot read {path}: {e}")?,
        },
    }
    Ok(true)
}

/// Runs one `view …` subcommand, printing exactly what `probdb-serve`
/// would return for the same line (both use the shared formatters).
fn execute_view(
    cmd: ViewCommand,
    db: &ProbDb,
    views: &mut ViewManager,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    match cmd {
        ViewCommand::Create { name, query } => {
            let def = match query {
                ViewQueryText::Boolean(q) => ViewDef::boolean(&q),
                ViewQueryText::Answers { head, cq } => ViewDef::answers(&head, &cq),
            };
            match def {
                Ok(def) => match views.create(&name, def, db) {
                    Ok(view) => write!(out, "{}", format_view_created(view))?,
                    Err(e) => writeln!(out, "error: {e}")?,
                },
                Err(e) => writeln!(out, "error: {e}")?,
            }
        }
        ViewCommand::Refresh { name } => match name {
            Some(name) => match views.refresh(&name, db) {
                Ok(outcome) => write!(out, "{}", format_view_refreshed(&name, outcome))?,
                Err(e) => writeln!(out, "error: {e}")?,
            },
            None => {
                if views.is_empty() {
                    writeln!(out, "(no views)")?;
                } else {
                    match views.refresh_all(db) {
                        Ok(outcomes) => {
                            for (n, o) in &outcomes {
                                write!(out, "{}", format_view_refreshed(n, *o))?;
                            }
                        }
                        Err(e) => writeln!(out, "error: {e}")?,
                    }
                }
            }
        },
        ViewCommand::Drop { name } => {
            if views.drop_view(&name) {
                writeln!(out, "view {name} dropped")?;
            } else {
                writeln!(out, "error: no view named {name}")?;
            }
        }
        ViewCommand::List => write!(out, "{}", format_view_list(views.iter()))?,
        ViewCommand::Show { name } => match views.get(&name) {
            Some(view) => write!(out, "{}", format_view_show(view))?,
            None => writeln!(out, "error: no view named {name}")?,
        },
    }
    Ok(())
}

/// Implements `wal inspect <path>`: decodes a write-ahead log (the `wal`
/// file itself, or a data directory containing one) and prints its LSN
/// range, every intact record, and the truncation point when the tail is
/// torn — the same read path replication catch-up uses.
fn inspect_wal(path: &str, out: &mut dyn Write) -> std::io::Result<()> {
    let p = std::path::Path::new(path);
    let file = if p.is_dir() {
        p.join("wal")
    } else {
        p.to_path_buf()
    };
    let bytes = match std::fs::read(&file) {
        Ok(b) => b,
        Err(e) => return writeln!(out, "error: cannot read {}: {e}", file.display()),
    };
    let follower = match probdb::store::WalFollower::from_bytes(&bytes, 0) {
        Ok(f) => f,
        Err(e) => return writeln!(out, "error: {} is not a probdb wal: {e}", file.display()),
    };
    writeln!(
        out,
        "{}: base_lsn={} next_lsn={} records={} valid_bytes={} of {}",
        file.display(),
        follower.base_lsn(),
        follower.next_lsn(),
        follower.remaining(),
        follower.valid_len(),
        bytes.len(),
    )?;
    let (truncated, valid_len) = (follower.truncated(), follower.valid_len());
    for rec in follower {
        writeln!(out, "  lsn {:>6}  {}", rec.lsn, describe_wal_op(&rec.op))?;
    }
    if truncated {
        writeln!(
            out,
            "  torn tail: {} byte(s) after offset {valid_len} are not intact records",
            bytes.len() as u64 - valid_len
        )?;
    }
    Ok(())
}

/// One-line human rendering of a WAL op for `wal inspect`.
fn describe_wal_op(op: &probdb::store::WalOp) -> String {
    use probdb::store::WalOp;
    let consts = |cs: &[u64]| cs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
    match op {
        WalOp::Insert {
            relation,
            tuple,
            prob,
        } => format!("insert {relation} {} {prob}", consts(tuple)),
        WalOp::UpdateProb {
            relation,
            tuple,
            prob,
        } => format!("update {relation} {} {prob}", consts(tuple)),
        WalOp::ExtendDomain { consts: cs } => format!("domain {}", consts(cs)),
        WalOp::ViewCreate { name, .. } => format!("view create {name}"),
        WalOp::ViewDrop { name } => format!("view drop {name}"),
    }
}

fn main() -> std::io::Result<()> {
    let mut db = ProbDb::new();
    let mut views = ViewManager::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::args().all(|a| a != "--batch");
    if interactive {
        writeln!(stdout, "probdb — type `help` for commands")?;
    }
    loop {
        if interactive {
            write!(stdout, "probdb> ")?;
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match parse_command(&line) {
            Ok(cmd) => {
                if !execute(cmd, &mut db, &mut views, &mut stdout)? {
                    break;
                }
            }
            Err(e) => writeln!(stdout, "error: {e}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lines: &[&str]) -> String {
        let mut db = ProbDb::new();
        let mut views = ViewManager::new();
        let mut out = Vec::new();
        for line in lines {
            let cmd = parse_command(line).unwrap();
            assert!(execute(cmd, &mut db, &mut views, &mut out).unwrap());
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn end_to_end_session() {
        let text = run(&[
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "query exists x. exists y. R(x) & S(x,y)",
            "classify R(x), S(x,y), T(y)",
            "answers x : R(x), S(x,y)",
        ]);
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("#P-hard"), "{text}");
        assert!(text.contains("x = 1"), "{text}");
    }

    #[test]
    fn view_session_maintains_probability() {
        let text = run(&[
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "view create v query exists x. exists y. R(x) & S(x,y)",
            "view show v",
            "update S 1 2 0.4",
            "view show v",
            "update S 9 9 0.4",
            "view list",
            "view drop v",
            "view drop v",
        ]);
        assert!(text.contains("1 row(s) materialized (circuit)"), "{text}");
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("p = 0.200000"), "{text}");
        assert!(
            text.contains("error: S(9, 9) is not a possible tuple"),
            "{text}"
        );
        assert!(text.contains("status=fresh"), "{text}");
        assert!(text.contains("view v dropped"), "{text}");
        assert!(text.contains("error: no view named v"), "{text}");
    }

    #[test]
    fn open_world_command() {
        let text = run(&["insert R 0 0.5", "domain 0 1", "open 0.2 exists x. R(x)"]);
        assert!(text.contains("p ∈ ["), "{text}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        assert!(run(&["query R(x"]).contains("error"));
    }

    #[test]
    fn stats_points_at_the_server() {
        assert!(run(&["stats"]).contains("probdb-serve"));
        assert!(run(&["trace last"]).contains("probdb-serve"));
        assert!(run(&["slowlog"]).contains("probdb-serve"));
    }

    #[test]
    fn explain_analyze_and_metrics_work_locally() {
        let text = run(&[
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "explain analyze exists x. exists y. R(x) & S(x,y)",
        ]);
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("engine=Lifted"), "{text}");
        assert!(text.contains("lifted "), "{text}");
        let metrics = run(&["metrics"]);
        probdb::obs::expo::validate(&metrics).expect("valid exposition");
        assert!(metrics.contains("pdb_kernel_evals_total"), "{metrics}");
    }

    /// `save` then `open` in a fresh session restores tuples AND views with
    /// their compiled circuits — the reopened view updates incrementally
    /// (zero recompiles), exactly like server recovery from a snapshot.
    #[test]
    fn save_and_open_round_trip_database_and_views() {
        let dir = std::env::temp_dir().join(format!("probdb-cli-save-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.pdb");
        let path = path.to_str().unwrap();

        let mut db = ProbDb::new();
        let mut views = ViewManager::new();
        let mut out = Vec::new();
        for line in [
            "insert R 1 0.5".to_string(),
            "insert S 1 2 0.8".to_string(),
            "view create v query exists x. exists y. R(x) & S(x,y)".to_string(),
            format!("save {path}"),
        ] {
            assert!(execute(parse_command(&line).unwrap(), &mut db, &mut views, &mut out).unwrap());
        }
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("saved 2 tuple(s), 1 view(s)"));

        let mut db2 = ProbDb::new();
        let mut views2 = ViewManager::new();
        let mut out2 = Vec::new();
        for line in [
            format!("open {path}"),
            "view show v".to_string(),
            "update S 1 2 0.4".to_string(),
            "view show v".to_string(),
        ] {
            assert!(execute(
                parse_command(&line).unwrap(),
                &mut db2,
                &mut views2,
                &mut out2
            )
            .unwrap());
        }
        let text = String::from_utf8(out2).unwrap();
        assert!(text.contains("opened"), "{text}");
        assert!(text.contains("p = 0.400000"), "{text}");
        assert!(text.contains("p = 0.200000"), "{text}");
        assert_eq!(views2.recompiles(), 0, "restored view must not recompile");
        std::fs::remove_dir_all(std::path::Path::new(path).parent().unwrap()).ok();
    }

    #[test]
    fn open_of_a_missing_or_garbage_file_is_not_fatal() {
        let text = run(&["open /nonexistent/definitely/missing.pdb"]);
        assert!(text.contains("error: cannot read"), "{text}");
        let dir = std::env::temp_dir().join(format!("probdb-cli-garbage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.pdb");
        std::fs::write(&bad, b"definitely not a snapshot").unwrap();
        let text = run(&[&format!("open {}", bad.to_str().unwrap())]);
        assert!(text.contains("is not a probdb snapshot"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The CLI must print exactly what the server's service layer returns
    /// for the same commands — both delegate to the shared formatters.
    #[test]
    fn cli_and_service_render_identically() {
        use probdb::server::{Service, ServiceOptions};
        let script = [
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "insert S 1 3 0.25",
            "query exists x. exists y. R(x) & S(x,y)",
            "classify R(x), S(x,y), T(y)",
            "answers x : R(x), S(x,y)",
            "show",
            "query R(x) @@@",
            "update S 1 2 0.4",
            "update R 9 0.5",
            "view create v query exists x. exists y. R(x) & S(x,y)",
            "view show v",
            "view list",
            "update S 1 3 0.5",
            "view show v",
            "insert R 2 0.5",
            "view list",
            "view refresh v",
            "view refresh",
            "view create a answers x : R(x), S(x,y)",
            "view show a",
            "view drop v",
            "view drop v",
            "view list",
        ];
        let mut db = ProbDb::new();
        let mut views = ViewManager::new();
        let service = Service::new(
            ProbDb::new(),
            ServiceOptions {
                query_timeout: std::time::Duration::ZERO,
                ..ServiceOptions::default()
            },
        );
        for line in script {
            let mut cli_out = Vec::new();
            execute(
                parse_command(line).unwrap(),
                &mut db,
                &mut views,
                &mut cli_out,
            )
            .unwrap();
            let (service_out, _) = service.handle_line(line);
            assert_eq!(
                String::from_utf8(cli_out).unwrap(),
                service_out,
                "divergence on {line:?}"
            );
        }
    }
}
