//! # probdb — probabilistic databases for all
//!
//! A complete Rust implementation of the probabilistic-database stack
//! surveyed in Dan Suciu's *"Probabilistic Databases for All"* (PODS 2020):
//! tuple-independent databases, the probabilistic query evaluation problem
//! (`PQE`), the polynomial-time / #P-hard dichotomy, lifted inference with
//! the inclusion/exclusion rule, extensional plans with upper/lower bounds,
//! grounded inference via DPLL-style weighted model counting and knowledge
//! compilation, correlations through constraints (Markov Logic Networks),
//! and symmetric FO² model counting.
//!
//! ## Quickstart
//!
//! ```
//! use probdb::ProbDb;
//!
//! let mut db = ProbDb::new();
//! db.insert("R", [1], 0.5);
//! db.insert("S", [1, 2], 0.8);
//! let answer = db.query("exists x. exists y. R(x) & S(x,y)").unwrap();
//! assert!((answer.probability - 0.4).abs() < 1e-12);
//! ```
//!
//! ## Crate map
//!
//! | module | subsystem | paper section |
//! |---|---|---|
//! | [`num`] | exact rationals, log-space arithmetic | substrate |
//! | [`logic`] | FO/CQ/UCQ ASTs, parser, hierarchy & separators | §2, §4, §5 |
//! | [`data`] | TIDs, possible worlds, generators, symmetric DBs | §2, §8, Fig. 1 |
//! | [`lineage`] | Boolean provenance, CNF, model checking | §7 + appendix |
//! | [`wmc`] | brute force, DPLL (+trace), Karp–Luby | §7 |
//! | [`compile`] | OBDD, FBDD, decision-DNNF, d-DNNF | §7, Fig. 2 |
//! | [`kernel`] | flat SoA circuit programs, batched evaluation | §7 engineering |
//! | [`lifted`] | lifted rules + inclusion/exclusion, dichotomy | §4, §5 |
//! | [`plans`] | extensional plans, safe plans, bounds | §6 |
//! | [`mln`] | Markov Logic Networks ↔ TID + constraint | §3, Fig. 3 |
//! | [`symmetric`] | H₀ closed form, FO² cell algorithm | §8 |
//! | [`bid`] | block-independent-disjoint databases | §1 |
//! | [`datalog`] | probabilistic datalog (ProbLog-style recursion) | §2, §9 |
//! | [`engine`] | the [`ProbDb`] cascade | all |
//! | [`par`] | work-stealing thread pool (`PROBDB_THREADS`) | infrastructure |
//! | [`views`] | incrementally maintained materialized views | §7 in production |
//! | [`server`] | concurrent TCP query service, result cache, stats | infrastructure |
//! | [`store`] | durable WAL + snapshots, crash recovery, fault injection | infrastructure |
//! | [`replica`] | primary/replica WAL shipping for read scale-out | infrastructure |
//! | [`obs`] | query tracing, metrics registry, Prometheus exposition | infrastructure |

pub use pdb_core as engine;
pub use pdb_core::{Answer, Complexity, EngineError, Method, ProbDb, QueryOptions};
pub use pdb_obs as obs;
pub use pdb_replica as replica;
pub use pdb_server as server;
pub use pdb_store as store;
pub use pdb_views as views;

pub use pdb_bid as bid;
pub use pdb_compile as compile;
pub use pdb_data as data;
pub use pdb_datalog as datalog;
pub use pdb_kernel as kernel;
pub use pdb_lifted as lifted;
pub use pdb_lineage as lineage;
pub use pdb_logic as logic;
pub use pdb_mln as mln;
pub use pdb_num as num;
pub use pdb_par as par;
pub use pdb_plans as plans;
pub use pdb_symmetric as symmetric;
pub use pdb_wmc as wmc;
