//! Property test for materialized-view maintenance: after any random mix of
//! probability updates and inserts — delivered through the versioned event
//! protocol, exactly as `probdb-serve` and the CLI deliver them — a
//! refreshed view must agree with from-scratch evaluation (`query_fo`),
//! either exactly or within the reported dissociation bounds.

use probdb::num::approx_eq;
use probdb::views::{RefreshOutcome, ViewDef, ViewManager, ViewOptions};
use probdb::{ProbDb, QueryOptions};
use proptest::prelude::*;

/// The view definitions under test: a safe (hierarchical) Boolean query, a
/// #P-hard-shaped Boolean query, and a non-Boolean answers view.
const BOOLEAN_VIEWS: &[(&str, &str)] = &[
    ("v_safe", "exists x. exists y. R(x) & S(x,y)"),
    ("v_hard", "exists x. exists y. R(x) & S(x,y) & T(y)"),
];

/// One random mutation: `insert == false` targets an existing tuple (a
/// no-op event when the tuple is absent), `insert == true` adds/overwrites.
#[derive(Clone, Debug)]
struct Op {
    insert: bool,
    rel: usize, // 0 = R(x), 1 = S(x,y), 2 = T(y)
    x: u64,
    y: u64,
    p: f64,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u32..2, 0usize..3, 0u64..3, 0u64..3, 1u32..=9).prop_map(|(insert, rel, x, y, p)| Op {
        insert: insert == 1,
        rel,
        x,
        y,
        p: f64::from(p) / 10.0,
    })
}

fn tuple_for(op: &Op) -> (&'static str, Vec<u64>) {
    match op.rel {
        0 => ("R", vec![op.x]),
        1 => ("S", vec![op.x, op.y]),
        _ => ("T", vec![op.y]),
    }
}

/// Builds the initial database, registers the views, applies every op with
/// event delivery, refreshes, and checks all views against from-scratch
/// evaluation.
fn check_maintenance(initial: Vec<Op>, ops: Vec<Op>, compile_budget: u64) {
    let mut db = ProbDb::new();
    for op in &initial {
        let (rel, tuple) = tuple_for(op);
        db.insert(rel, tuple, op.p);
    }

    let mut mgr = ViewManager::with_options(ViewOptions {
        compile_budget,
        fallback: QueryOptions::default(),
    });
    for (name, text) in BOOLEAN_VIEWS {
        mgr.create(name, ViewDef::boolean(text).unwrap(), &db)
            .unwrap();
    }
    let head = ["x".to_string()];
    mgr.create(
        "v_rows",
        ViewDef::answers(&head, "R(x), S(x,y)").unwrap(),
        &db,
    )
    .unwrap();

    for op in &ops {
        let (rel, tuple) = tuple_for(op);
        if op.insert {
            db.insert(rel, tuple, op.p);
            mgr.on_insert(rel, db.relation_version(rel));
        } else {
            let t = probdb::data::Tuple::new(tuple);
            if let Some(version) = db.update_prob(rel, &t, op.p) {
                mgr.on_update_prob(rel, &t, op.p, version);
            }
        }
    }

    mgr.refresh_all(&db).unwrap();

    for (name, text) in BOOLEAN_VIEWS {
        let view = mgr.get(name).unwrap();
        prop_assert!(!view.is_stale(), "{name} still stale after refresh");
        let got = view.boolean_answer().unwrap();
        let truth = db.query(text).unwrap();
        match got.bounds {
            Some((lo, hi)) => {
                prop_assert!(
                    truth.probability >= lo - 1e-6 && truth.probability <= hi + 1e-6,
                    "{name}: truth {} outside reported bounds [{lo}, {hi}]",
                    truth.probability
                );
                prop_assert!(
                    got.probability >= lo - 1e-9 && got.probability <= hi + 1e-9,
                    "{name}: materialized {} outside its own bounds [{lo}, {hi}]",
                    got.probability
                );
            }
            None => prop_assert!(
                approx_eq(got.probability, truth.probability, 1e-9),
                "{name}: view {} vs from-scratch {}",
                got.probability,
                truth.probability
            ),
        }
    }

    let view = mgr.get("v_rows").unwrap();
    let (_, got_rows) = view.answer_rows().unwrap();
    let cq = probdb::logic::parse_cq("R(x), S(x,y)").unwrap();
    let vars = [probdb::logic::Var::new("x")];
    let truth_rows = db
        .query_answers(&cq, &vars, &QueryOptions::default())
        .unwrap();
    prop_assert_eq!(got_rows.len(), truth_rows.len(), "answer-row count");
    let mut got_sorted: Vec<(Vec<u64>, f64)> = got_rows
        .iter()
        .map(|r| (r.values.clone(), r.probability))
        .collect();
    got_sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut want_sorted: Vec<(Vec<u64>, f64)> = truth_rows
        .iter()
        .map(|r| (r.values.clone(), r.probability))
        .collect();
    want_sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for ((gv, gp), (wv, wp)) in got_sorted.iter().zip(&want_sorted) {
        prop_assert_eq!(gv, wv, "answer bindings diverge");
        prop_assert!(
            approx_eq(*gp, *wp, 1e-9),
            "v_rows {:?}: view {} vs from-scratch {}",
            gv,
            gp,
            wp
        );
    }

    // A second refresh must be a no-op across the board.
    for (name, outcome) in mgr.refresh_all(&db).unwrap() {
        assert_eq!(outcome, RefreshOutcome::Fresh, "{name} not fresh");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With a generous compile budget every row is a circuit: updates are
    /// absorbed incrementally and must agree with `query_fo` exactly.
    #[test]
    fn random_updates_and_inserts_keep_views_exact(
        initial in prop::collection::vec(arb_op(), 1..10),
        ops in prop::collection::vec(arb_op(), 0..20),
    ) {
        check_maintenance(initial, ops, 200_000);
    }

    /// With the budget forced to one decision, every row takes the fallback
    /// path: refresh re-queries the cascade, and any approximate rows must
    /// bracket the truth with their dissociation bounds.
    #[test]
    fn exhausted_compile_budget_still_tracks_the_cascade(
        initial in prop::collection::vec(arb_op(), 1..8),
        ops in prop::collection::vec(arb_op(), 0..12),
    ) {
        check_maintenance(initial, ops, 1);
    }
}

/// Deterministic regression: the exact update sequence from the paper's
/// Figure 1 database, checked against hand-computed probabilities.
#[test]
fn figure_one_view_follows_updates() {
    let mut db = ProbDb::new();
    db.insert("R", [1], 0.5);
    db.insert("S", [1, 2], 0.8);
    let mut mgr = ViewManager::new();
    mgr.create(
        "v",
        ViewDef::boolean("exists x. exists y. R(x) & S(x,y)").unwrap(),
        &db,
    )
    .unwrap();
    assert!(approx_eq(
        mgr.get("v").unwrap().boolean_answer().unwrap().probability,
        0.4,
        1e-12
    ));

    let t = probdb::data::Tuple::new(vec![1, 2]);
    let version = db.update_prob("S", &t, 0.5).unwrap();
    let absorbed = mgr.on_update_prob("S", &t, 0.5, version);
    assert_eq!(absorbed, 1, "circuit view must absorb the update in place");
    assert!(approx_eq(
        mgr.get("v").unwrap().boolean_answer().unwrap().probability,
        0.25,
        1e-12
    ));
    assert_eq!(mgr.incremental_applied(), 1);
}
