//! Randomized query-level correctness: generated hierarchical CQs must be
//! liftable and exact; generated FO sentences must ground correctly; the
//! engine cascade must agree with brute force on everything it accepts.

use probdb::data::{generators, TupleDb};
use probdb::lifted::LiftedEngine;
use probdb::logic::{Atom, Cq, Fo, Predicate, Term};
use probdb::num::approx_eq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random *hierarchical* self-join-free CQ by growing a chain of
/// nested variable scopes: atoms at depth d contain variables v₀ … v_d,
/// which keeps `at(vᵢ) ⊇ at(vⱼ)` for i < j — hierarchical by construction.
fn hierarchical_cq(depths: &[usize]) -> Cq {
    let vars: Vec<Term> = (0..=depths.iter().copied().max().unwrap_or(0))
        .map(|i| Term::var(&format!("v{i}")))
        .collect();
    let atoms: Vec<Atom> = depths
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let args: Vec<Term> = vars[..=d].to_vec();
            Atom::new(Predicate::new(&format!("P{i}"), args.len()), args)
        })
        .collect();
    Cq::new(atoms)
}

/// A database covering the predicates of a CQ with random tuples.
fn db_for(cq: &Cq, seed: u64, n: u64) -> TupleDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs: Vec<generators::RelationSpec> = cq
        .predicates()
        .into_iter()
        .map(|p| generators::RelationSpec::new(p.name(), p.arity(), (n as usize) + 1))
        .collect();
    generators::random_tid(n, &specs, (0.1, 0.9), &mut rng)
}

fn oracle(cq: &Cq, db: &TupleDb) -> f64 {
    let idx = db.index();
    let lin = probdb::lineage::ucq_dnf_lineage(&probdb::logic::Ucq::single(cq.clone()), db, &idx)
        .to_expr();
    let probs: Vec<f64> = idx.iter().map(|(_, r)| r.prob).collect();
    probdb::wmc::brute::expr_probability(&lin, &probs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every generated hierarchical sjf CQ is (a) classified hierarchical,
    /// (b) liftable, (c) has a safe plan, and (d) all three engines agree.
    #[test]
    fn hierarchical_cqs_are_fully_tractable(
        depths in prop::collection::vec(0usize..3, 1..4),
        seed in 0u64..10_000,
    ) {
        let cq = hierarchical_cq(&depths);
        prop_assert!(cq.is_hierarchical());
        prop_assert!(!cq.has_self_join());
        let db = db_for(&cq, seed, 3);
        let truth = oracle(&cq, &db);
        // Lifted.
        let lifted = LiftedEngine::new(&db)
            .probability_cq(&cq)
            .expect("hierarchical CQs are liftable");
        prop_assert!(approx_eq(lifted, truth, 1e-9), "lifted {lifted} vs {truth}");
        // Safe plan.
        if cq.atoms().len() <= 4 {
            let plan = probdb::plans::safe_plan(&cq).expect("safe plan exists");
            let by_plan = probdb::plans::execute(&plan, &db).boolean_prob();
            prop_assert!(approx_eq(by_plan, truth, 1e-9), "plan {by_plan} vs {truth}");
        }
    }

    /// The engine cascade agrees with the lineage oracle on random CQs,
    /// hierarchical or not (falling back to grounded inference as needed).
    #[test]
    fn cascade_is_exact_on_random_cqs(
        shape in prop::collection::vec((0usize..2, 0usize..2), 2..4),
        seed in 0u64..10_000,
    ) {
        // Binary atoms over a small pool of variables; self-joins excluded
        // by numbering predicates.
        let atoms: Vec<Atom> = shape
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                Atom::new(
                    Predicate::new(&format!("Q{i}"), 2),
                    vec![
                        Term::var(&format!("v{a}")),
                        Term::var(&format!("v{}", b + 1)),
                    ],
                )
            })
            .collect();
        let cq = Cq::new(atoms);
        let db = db_for(&cq, seed, 3);
        let truth = oracle(&cq, &db);
        let engine = probdb::ProbDb::from_tuple_db(db);
        let answer = engine
            .query_fo(&cq.to_fo(), &probdb::QueryOptions::default())
            .expect("CQs are always evaluable");
        prop_assert!(
            approx_eq(answer.probability, truth, 1e-9),
            "{:?} gave {} vs {}", answer.method, answer.probability, truth
        );
    }
}

/// Random small FO sentences (with negation and mixed quantifiers) against
/// brute-force world enumeration.
#[test]
fn random_fo_sentences_ground_correctly() {
    let connectives = [
        "exists x. R(x) & !S(x,x)",
        "forall x. (R(x) -> (exists y. S(x,y)))",
        "(exists x. R(x)) & !(forall y. R(y))",
        "forall x. forall y. (S(x,y) -> S(y,x))",
        "exists x. forall y. (S(x,y) | R(y))",
        "!(exists x. R(x) & (forall y. !S(x,y)))",
    ];
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = generators::random_tid(
            3,
            &[
                generators::RelationSpec::new("R", 1, 2),
                generators::RelationSpec::new("S", 2, 4),
            ],
            (0.2, 0.8),
            &mut rng,
        );
        for text in connectives {
            let fo: Fo = probdb::logic::parse_fo(text).unwrap();
            let truth = probdb::lineage::eval::brute_force_probability(&fo, &db);
            let grounded = probdb::wmc::probability_of_query(&fo, &db);
            assert!(
                approx_eq(grounded, truth, 1e-9),
                "{text}: {grounded} vs {truth} (seed {seed})"
            );
        }
    }
}

/// BID inference agrees with BID world enumeration on random databases
/// (cross-crate property check beyond the unit tests).
#[test]
fn bid_inference_randomized() {
    use rand::Rng;
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed * 13 + 1);
        let mut db = probdb::bid::BidDb::new();
        for key in 0..3u64 {
            let alts = rng.gen_range(1..=2);
            let mut remaining = 1.0f64;
            for a in 0..alts {
                let p = rng.gen_range(0.05..remaining * 0.7);
                db.insert("R", 1, [key, 20 + a], p);
                remaining -= p;
            }
        }
        for v in 20..23u64 {
            db.insert("U", 1, [v], rng.gen_range(0.1..0.9));
        }
        let q = probdb::logic::parse_fo("exists k. exists v. R(k,v) & U(v)").unwrap();
        let fast = probdb::bid::probability(&q, &db);
        let brute = probdb::bid::worlds::brute_force_probability(&q, &db);
        assert!(
            approx_eq(fast, brute, 1e-9),
            "seed {seed}: {fast} vs {brute}"
        );
    }
}
