//! Crash-recovery property test for the durable store: after a random op
//! sequence with a fault injected at a random write boundary (process halt,
//! torn write, or bit flip), recovery must yield a **prefix-consistent**
//! database — bit-identical, across all five query kinds, to a fresh replay
//! of the ops that survived on disk — and under `fsync=always` no
//! acknowledged mutation may be lost. Materialized views must resume from
//! their persisted circuits: recovery recompiles exactly the views created
//! in the WAL tail (after the last surviving checkpoint) and no others.

use probdb::store::snapshot::apply_op;
use probdb::store::{FailpointFs, Fault, FsyncPolicy, MemFs, Store, StoreOptions, WalOp};
use probdb::views::persist::ViewDefState;
use probdb::views::ViewManager;
use probdb::{ProbDb, QueryOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// The two Boolean view definitions ops can create/drop: one safe
/// (hierarchical) query and one #P-hard-shaped one.
const VIEW_DEFS: &[(&str, &str)] = &[
    ("v_safe", "exists x. exists y. R(x) & S(x,y)"),
    ("v_hard", "exists x. exists y. R(x) & S(x,y) & T(y)"),
];

#[derive(Clone, Debug)]
struct RawOp {
    kind: u32,  // 0-1 insert, 2 update, 3 domain, 4 view create, 5 view drop
    rel: usize, // 0 = R(x), 1 = S(x,y), 2 = T(y)
    x: u64,
    y: u64,
    p: f64,
    which: usize, // view slot for create/drop
}

fn arb_raw() -> impl Strategy<Value = RawOp> {
    (
        (0u32..6, 0usize..3, 0u64..3),
        (0u64..3, 1u32..=9, 0usize..2),
    )
        .prop_map(|((kind, rel, x), (y, p, which))| RawOp {
            kind,
            rel,
            x,
            y,
            p: f64::from(p) / 10.0,
            which,
        })
}

fn relation_tuple(r: &RawOp) -> (&'static str, Vec<u64>) {
    match r.rel {
        0 => ("R", vec![r.x]),
        1 => ("S", vec![r.x, r.y]),
        _ => ("T", vec![r.y]),
    }
}

/// Lowers the raw sequence to valid `WalOp`s: view creates/drops are made
/// consistent (no duplicate create, no drop of an absent view) so every op
/// applies cleanly and the sequence is its own replay reference.
fn to_wal_ops(raw: &[RawOp]) -> Vec<WalOp> {
    let mut live = [false, false];
    let mut out = Vec::with_capacity(raw.len());
    for r in raw {
        let (relation, tuple) = relation_tuple(r);
        let op = match r.kind {
            0 | 1 => WalOp::Insert {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
            2 => WalOp::UpdateProb {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
            3 => WalOp::ExtendDomain {
                consts: vec![r.x, r.y],
            },
            4 if !live[r.which] => {
                live[r.which] = true;
                let (name, text) = VIEW_DEFS[r.which];
                WalOp::ViewCreate {
                    name: name.into(),
                    def: ViewDefState::Boolean(text.into()),
                }
            }
            5 if live[r.which] => {
                live[r.which] = false;
                WalOp::ViewDrop {
                    name: VIEW_DEFS[r.which].0.into(),
                }
            }
            // Create of a live view / drop of an absent one degrade to a
            // harmless mutation so the sequence length is preserved.
            _ => WalOp::Insert {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
        };
        out.push(op);
    }
    out
}

/// Fresh replay of `ops` — the reference every recovery is compared to.
fn reference(ops: &[WalOp]) -> (ProbDb, ViewManager) {
    let mut db = ProbDb::new();
    let mut views = ViewManager::new();
    for op in ops {
        apply_op(op, &mut db, &mut views).expect("generated op must apply");
    }
    (db, views)
}

/// Tuple-level equality: every stored probability bit-identical.
fn assert_tuples_identical(got: &ProbDb, want: &ProbDb) {
    assert_eq!(got.version(), want.version(), "db version");
    assert_eq!(
        got.domain_version(),
        want.domain_version(),
        "domain version"
    );
    assert_eq!(got.tuple_db().tuple_count(), want.tuple_db().tuple_count());
    for rel in want.tuple_db().relations() {
        for (t, p) in rel.iter() {
            let g = got.tuple_db().prob(rel.name(), t);
            assert_eq!(g.to_bits(), p.to_bits(), "{}({t})", rel.name());
        }
    }
}

/// View-level equality (query kind 5: `view show`): same views, same
/// staleness, bit-identical row probabilities.
fn assert_views_identical(got: &ViewManager, want: &ViewManager) {
    assert_eq!(got.len(), want.len(), "view count");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.name(), w.name());
        assert_eq!(g.is_stale(), w.is_stale(), "{} staleness", g.name());
        assert_eq!(g.rows().len(), w.rows().len(), "{} rows", g.name());
        for (a, b) in g.rows().iter().zip(w.rows()) {
            assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "{} row probability",
                g.name()
            );
        }
    }
}

/// Query kinds 1-4 (`query`, `answers`, `classify`, `open`): the recovered
/// database must answer each bit-identically to the reference replay.
fn assert_queries_identical(got: &ProbDb, want: &ProbDb) {
    let opts = QueryOptions::default();
    for (_, text) in VIEW_DEFS {
        match (got.query(text), want.query(text)) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "query {text}"
            ),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("query {text}: divergent outcomes {a:?} vs {b:?}"),
        }
    }

    let cq = probdb::logic::parse_cq("R(x), S(x,y)").unwrap();
    let head = [probdb::logic::Var::new("x")];
    match (
        got.query_answers(&cq, &head, &opts),
        want.query_answers(&cq, &head, &opts),
    ) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.len(), b.len(), "answer count");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "answer bindings");
                assert_eq!(x.probability.to_bits(), y.probability.to_bits());
            }
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("answers: divergent outcomes {a:?} vs {b:?}"),
    }

    let ucq = probdb::logic::parse_ucq("R(x), S(x,y), T(y)").unwrap();
    assert_eq!(
        format!("{:?}", got.classify(&ucq)),
        format!("{:?}", want.classify(&ucq)),
        "classification"
    );

    let fo = probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y)").unwrap();
    match (
        got.query_open_world(&fo, 0.2, &opts),
        want.query_open_world(&fo, 0.2, &opts),
    ) {
        (Ok((alo, ahi)), Ok((blo, bhi))) => {
            assert_eq!(
                alo.probability.to_bits(),
                blo.probability.to_bits(),
                "open lower"
            );
            assert_eq!(
                ahi.probability.to_bits(),
                bhi.probability.to_bits(),
                "open upper"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("open-world: divergent outcomes {a:?} vs {b:?}"),
    }
}

fn data_dir() -> PathBuf {
    PathBuf::from("data")
}

/// Runs `ops` against a store with `fault` armed, crashing when the fault
/// fires; returns how many ops were acknowledged (append returned `Ok`).
fn run_until_fault(fs: &FailpointFs, ops: &[WalOp], fault: Fault, checkpoint_every: u64) -> usize {
    fs.inject(fault);
    let store_opts = StoreOptions {
        fsync: FsyncPolicy::Always,
        checkpoint_every,
    };
    let mut acked = 0;
    // Open may itself hit the fault (boundary 0 is the WAL header write);
    // then nothing was acknowledged and recovery starts from genesis.
    if let Ok((mut store, rec)) = Store::open(Arc::new(fs.clone()), &data_dir(), store_opts) {
        let mut db = rec.db;
        let mut views = rec.views;
        for op in ops {
            // Apply-then-log, exactly like the serving layer.
            apply_op(op, &mut db, &mut views).expect("generated op must apply");
            match store.append(op) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
            if store.should_checkpoint() {
                // A checkpoint interrupted by the fault is part of the
                // matrix: recovery must fall back to the old pair.
                let _ = store.checkpoint(&db, &views.export_states());
            }
        }
    }
    acked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: `kill -9` at ANY injected fault point loses
    /// no acknowledged mutation under `fsync=always`, and recovery is
    /// always a prefix of the acknowledged sequence — bit-identical across
    /// every query kind, with views resuming from their circuits (only the
    /// ones created after the last surviving checkpoint recompile).
    #[test]
    fn crash_at_a_random_boundary_recovers_a_prefix_of_the_acked_ops(
        raw in prop::collection::vec(arb_raw(), 1..12),
        boundary in 0u64..20,
        fault_kind in 0u32..3,
        with_checkpoints in 0u32..2,
    ) {
        let ops = to_wal_ops(&raw);
        let fault = match fault_kind {
            0 => Fault::Halt { at: boundary },
            1 => Fault::TornWrite { at: boundary, keep: 3 },
            _ => Fault::BitFlip { at: boundary, bit: boundary * 13 + 5 },
        };
        let checkpoint_every = if with_checkpoints == 1 { 3 } else { 0 };

        let mem = MemFs::new();
        let fs = FailpointFs::new(Arc::new(mem.clone()));
        let acked = run_until_fault(&fs, &ops, fault, checkpoint_every);

        // kill -9: unsynced bytes die with the process. Recovery runs on
        // the bare filesystem (the halted wrapper models the dead process).
        mem.crash();
        let (_store, rec) = Store::open(
            Arc::new(mem.clone()),
            &data_dir(),
            StoreOptions { fsync: FsyncPolicy::Always, checkpoint_every: 0 },
        ).expect("recovery must always succeed");

        let recovered = (rec.info.snapshot_lsn + rec.info.replayed_ops) as usize;
        prop_assert!(recovered <= ops.len(), "recovered more ops than were issued");
        if fault_kind < 2 {
            // Halt / torn write: every acknowledged (synced) op survives. A
            // bit flip is silent corruption — acked-but-corrupt records are
            // legitimately dropped, so only prefix consistency applies.
            prop_assert!(
                recovered >= acked,
                "acked {acked} ops but recovered only {recovered}"
            );
        }

        // Views resume from persisted circuits: recovery recompiles exactly
        // the creates sitting in the replayed WAL tail.
        let tail = &ops[rec.info.snapshot_lsn as usize..recovered];
        let tail_creates = tail
            .iter()
            .filter(|o| matches!(o, WalOp::ViewCreate { .. }))
            .count();
        prop_assert_eq!(
            rec.views.recompiles() as usize,
            tail_creates,
            "recovery must recompile tail creates only"
        );

        // Prefix consistency, bit-identical across the five query kinds.
        let (want_db, want_views) = reference(&ops[..recovered]);
        assert_tuples_identical(&rec.db, &want_db);
        assert_views_identical(&rec.views, &want_views);
        assert_queries_identical(&rec.db, &want_db);
    }

    /// `fsync=never` bounds nothing but still never corrupts: a crash
    /// keeps some prefix of the issued ops (whatever reached the platter),
    /// and recovery of that prefix is bit-identical to its fresh replay.
    #[test]
    fn fsync_never_crash_is_still_prefix_consistent(
        raw in prop::collection::vec(arb_raw(), 1..10),
    ) {
        let ops = to_wal_ops(&raw);
        let mem = MemFs::new();
        let store_opts = StoreOptions { fsync: FsyncPolicy::Never, checkpoint_every: 0 };
        {
            let (mut store, rec) = Store::open(Arc::new(mem.clone()), &data_dir(), store_opts.clone())
                .expect("fresh open");
            let mut db = rec.db;
            let mut views = rec.views;
            for op in &ops {
                apply_op(op, &mut db, &mut views).expect("generated op must apply");
                store.append(op).expect("append");
            }
        }
        mem.crash();
        let (_store, rec) = Store::open(Arc::new(mem.clone()), &data_dir(), store_opts)
            .expect("recovery must always succeed");
        let recovered = rec.info.replayed_ops as usize;
        prop_assert!(recovered <= ops.len());
        let (want_db, want_views) = reference(&ops[..recovered]);
        assert_tuples_identical(&rec.db, &want_db);
        assert_views_identical(&rec.views, &want_views);
    }
}
