//! Property-based invariants over randomly generated formulas, databases,
//! and queries.

use probdb::compile::Obdd;
use probdb::data::{TupleDb, TupleId};
use probdb::lineage::BoolExpr;
use probdb::num::{approx_eq, Rational};
use probdb::wmc::{brute, probability_of_expr, DpllOptions};
use proptest::prelude::*;

/// A random Boolean expression over `n` variables.
fn arb_expr(nvars: u32, depth: u32) -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(|v| BoolExpr::var(TupleId(v))),
        Just(BoolExpr::TRUE),
        Just(BoolExpr::FALSE),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::and_all),
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::or_all),
            inner.prop_map(BoolExpr::negate),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The DPLL counter (through whichever CNF encoding applies) agrees
    /// with brute-force enumeration on arbitrary formulas.
    #[test]
    fn dpll_matches_brute_force(expr in arb_expr(6, 3), seed in 0u64..1000) {
        let mut probs = Vec::with_capacity(6);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for _ in 0..6 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            probs.push((state >> 11) as f64 / (1u64 << 53) as f64);
        }
        let truth = brute::expr_probability(&expr, &probs);
        let (p, _) = probability_of_expr(&expr, &probs, DpllOptions::default());
        prop_assert!(approx_eq(p, truth, 1e-9), "dpll {p} vs brute {truth}");
    }

    /// OBDD compilation preserves semantics and probability under any
    /// variable order (here: identity and reverse).
    #[test]
    fn obdd_is_faithful(expr in arb_expr(5, 3)) {
        let ident: Vec<u32> = (0..5).collect();
        let rev: Vec<u32> = (0..5).rev().collect();
        let a = Obdd::compile(&expr, &ident);
        let b = Obdd::compile(&expr, &rev);
        for mask in 0u32..32 {
            let assignment = |v: u32| mask >> v & 1 == 1;
            let direct = expr.eval(&|t| assignment(t.0));
            prop_assert_eq!(a.eval(&assignment), direct);
            prop_assert_eq!(b.eval(&assignment), direct);
        }
        let probs = [0.3; 5];
        prop_assert!(approx_eq(a.probability(&probs), b.probability(&probs), 1e-9));
    }

    /// NNF conversion preserves semantics.
    #[test]
    fn nnf_preserves_semantics(expr in arb_expr(5, 4)) {
        let nnf = expr.nnf();
        for mask in 0u32..32 {
            let assignment = |t: TupleId| mask >> t.0 & 1 == 1;
            prop_assert_eq!(expr.eval(&assignment), nnf.eval(&assignment));
        }
    }

    /// Rational arithmetic is a field (on small operands): associativity,
    /// commutativity, distributivity, inverses.
    #[test]
    fn rational_field_axioms(
        (an, ad) in (-50i64..50, 1i64..50),
        (bn, bd) in (-50i64..50, 1i64..50),
        (cn, cd) in (-50i64..50, 1i64..50),
    ) {
        let a = Rational::new(an as i128, ad as i128);
        let b = Rational::new(bn as i128, bd as i128);
        let c = Rational::new(cn as i128, cd as i128);
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + (-a), Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(b * b.recip(), Rational::ONE);
        }
    }

    /// World probabilities of a random TID sum to 1 (exactly, in rationals).
    #[test]
    fn world_probabilities_sum_to_one(probs in prop::collection::vec(0u32..=4, 1..8)) {
        // probabilities k/4 for k in 0..=4
        let mut db = TupleDb::new();
        for (i, &k) in probs.iter().enumerate() {
            db.insert("R", [i as u64], k as f64 / 4.0);
        }
        let idx = db.index();
        let mut total = Rational::ZERO;
        for w in probdb::data::worlds::enumerate(&idx) {
            let mut pw = Rational::ONE;
            for (id, _) in idx.iter() {
                let k = probs[id.index()] as i128;
                let p = Rational::new(k, 4);
                pw *= if w.contains(id) { p } else { p.complement() };
            }
            total += pw;
        }
        prop_assert_eq!(total, Rational::ONE);
    }

    /// The hierarchical test is invariant under variable renaming and atom
    /// order, and `safe_plan` agrees with it for sjf CQs.
    #[test]
    fn hierarchy_renaming_invariance(perm in 0usize..6) {
        use probdb::logic::parse_cq;
        let variants = [
            ("R(x), S(x,y)", "R(a), S(a,b)"),
            ("R(x), S(x,y), T(y)", "T(q), R(p), S(p,q)"),
            ("A(x), B(y)", "B(v), A(u)"),
        ];
        let (orig, renamed) = variants[perm % variants.len()];
        let a = parse_cq(orig).unwrap();
        let b = parse_cq(renamed).unwrap();
        prop_assert_eq!(a.is_hierarchical(), b.is_hierarchical());
        prop_assert_eq!(
            probdb::plans::safe_plan(&a).is_some(),
            probdb::plans::safe_plan(&b).is_some()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lineage evaluation equals direct FO model checking on sampled worlds
    /// for random databases.
    #[test]
    fn lineage_equals_model_checking(seed in 0u64..500) {
        use probdb::data::generators::{random_tid, RelationSpec};
        use probdb::logic::parse_fo;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let db = random_tid(
            3,
            &[RelationSpec::new("R", 1, 2), RelationSpec::new("S", 2, 3)],
            (0.2, 0.8),
            &mut rng,
        );
        let idx = db.index();
        let fo = parse_fo("forall x. (R(x) -> (exists y. S(x,y)))").unwrap();
        let lin = probdb::lineage::lineage(&fo, &db, &idx);
        for _ in 0..20 {
            let w = probdb::data::worlds::sample(&idx, &mut rng);
            prop_assert_eq!(
                lin.eval_world(&w),
                probdb::lineage::eval::holds(&fo, &db, &idx, &w)
            );
        }
    }

    /// The all-plans upper bound dominates the oblivious lower bound, and
    /// both bracket the Karp–Luby estimate, on random hard instances.
    #[test]
    fn bounds_bracket_estimates(seed in 0u64..200) {
        use probdb::data::generators::bipartite;
        use probdb::logic::parse_cq;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let db = bipartite(3, 0.7, (0.2, 0.8), &mut rng);
        let cq = parse_cq("R(x), S(x,y), T(y)").unwrap();
        let b = probdb::plans::bounds::bounds(&cq, &db);
        prop_assert!(b.lower <= b.upper + 1e-9);
        let idx = db.index();
        let lin = probdb::lineage::ucq_dnf_lineage(
            &probdb::logic::Ucq::single(cq),
            &db,
            &idx,
        );
        let probs: Vec<f64> = idx.iter().map(|(_, r)| r.prob).collect();
        let est = probdb::wmc::karp_luby::estimate(&lin, &probs, 20_000, &mut rng);
        prop_assert!(
            est.value >= b.lower - 0.08 && est.value <= b.upper + 0.08,
            "estimate {} outside [{}, {}]", est.value, b.lower, b.upper
        );
    }
}
