//! Probabilistic datalog vs. first principles: on random graphs, the
//! transitive-closure program's probabilities must equal two-terminal
//! network reliability computed by possible-world enumeration, and the
//! non-recursive fragment must agree with the UCQ engines.

use probdb::data::{Tuple, TupleDb};
use probdb::datalog::{parse_program, DatalogEngine};
use probdb::num::approx_eq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const TC: &str = "
    Path(x,y) <- Edge(x,y).
    Path(x,z) <- Path(x,y), Edge(y,z).
";

/// Reliability by definition: enumerate edge subsets, BFS each.
fn reliability(db: &TupleDb, s: u64, t: u64) -> f64 {
    let idx = db.index();
    let mut total = 0.0;
    for w in probdb::data::worlds::enumerate(&idx) {
        let mut reach = BTreeSet::from([s]);
        loop {
            let mut grew = false;
            for (id, fact) in idx.iter() {
                if w.contains(id) {
                    let (a, b) = (fact.tuple.get(0), fact.tuple.get(1));
                    if reach.contains(&a) && reach.insert(b) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if reach.contains(&t) {
            total += w.probability(&idx);
        }
    }
    total
}

#[test]
fn random_graphs_match_reliability() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed * 17 + 3);
        let n = 4u64;
        let mut db = TupleDb::new();
        let mut edges = 0;
        for a in 0..n {
            for b in 0..n {
                if a != b && rng.gen_bool(0.5) && edges < 10 {
                    db.insert("Edge", [a, b], rng.gen_range(0.2..0.9));
                    edges += 1;
                }
            }
        }
        if edges == 0 {
            continue;
        }
        let mut engine = DatalogEngine::new(&db, parse_program(TC).unwrap());
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let p = engine.probability("Path", &Tuple::from([s, t]));
                let expected = reliability(&db, s, t);
                assert!(
                    approx_eq(p, expected, 1e-9),
                    "seed {seed}, {s}→{t}: datalog {p} vs reliability {expected}"
                );
            }
        }
    }
}

#[test]
fn series_parallel_closed_forms() {
    // Series: 0 →(p) 1 →(q) 2: reliability = p·q.
    let mut db = TupleDb::new();
    db.insert("Edge", [0, 1], 0.8);
    db.insert("Edge", [1, 2], 0.5);
    let mut engine = DatalogEngine::new(&db, parse_program(TC).unwrap());
    assert!(approx_eq(
        engine.probability("Path", &Tuple::from([0, 2])),
        0.4,
        1e-12
    ));
    // Parallel: two disjoint 0→3 paths: 1 − (1−p₁p₂)(1−q₁q₂).
    let mut db2 = TupleDb::new();
    db2.insert("Edge", [0, 1], 0.8);
    db2.insert("Edge", [1, 3], 0.5);
    db2.insert("Edge", [0, 2], 0.6);
    db2.insert("Edge", [2, 3], 0.9);
    let mut engine2 = DatalogEngine::new(&db2, parse_program(TC).unwrap());
    let expected = 1.0 - (1.0 - 0.8 * 0.5) * (1.0 - 0.6 * 0.9);
    assert!(approx_eq(
        engine2.probability("Path", &Tuple::from([0, 3])),
        expected,
        1e-12
    ));
}

#[test]
fn chained_nonrecursive_rules_agree_with_the_engine_cascade() {
    // Two-stage pipeline without recursion: Good(x) <- R(x), S(x,y);
    // Best(x) <- Good(x), T(x).
    let mut rng = StdRng::seed_from_u64(9);
    let mut db = TupleDb::new();
    for i in 0..3u64 {
        db.insert("R", [i], rng.gen_range(0.2..0.9));
        db.insert("T", [i], rng.gen_range(0.2..0.9));
        for j in 0..2u64 {
            db.insert("S", [i, 10 + j], rng.gen_range(0.2..0.9));
        }
    }
    let program = parse_program("Good(x) <- R(x), S(x,y).\nBest(x) <- Good(x), T(x).").unwrap();
    let mut engine = DatalogEngine::new(&db, program);
    let cascade = probdb::ProbDb::from_tuple_db(db.clone());
    for i in 0..3u64 {
        let by_datalog = engine.probability("Best", &Tuple::from([i]));
        // Best(i) ≡ ∃y R(i) ∧ S(i,y) ∧ T(i).
        let q = format!("exists y. R({i}) & S({i},y) & T({i})");
        let by_cascade = cascade.query(&q).unwrap().probability;
        assert!(
            approx_eq(by_datalog, by_cascade, 1e-9),
            "{i}: {by_datalog} vs {by_cascade}"
        );
    }
}

#[test]
fn lineage_is_exposed_and_monotone_dnf() {
    let mut db = TupleDb::new();
    db.insert("Edge", [0, 1], 0.5);
    db.insert("Edge", [1, 2], 0.5);
    let mut engine = DatalogEngine::new(&db, parse_program(TC).unwrap());
    let lin = engine
        .lineage("Path", &Tuple::from([0, 2]))
        .expect("derivable");
    assert!(lin.is_monotone_dnf());
    assert_eq!(lin.vars().len(), 2);
    assert!(engine.lineage("Path", &Tuple::from([2, 0])).is_none());
}
