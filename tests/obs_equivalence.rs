//! Observability is free of observable side effects: every query kind
//! returns **bit-identical** results — probability bits, engine choice,
//! and the approximate engine's RNG-derived standard error — with tracing
//! on or off, at every pool size (1, 2, 8 threads).
//!
//! This extends the PR 3/8 determinism contract (`parallel_determinism.rs`)
//! to the tracing layer: a span records wall time and attributes but never
//! touches the RNG, the sampling chunk layout, or the floating-point
//! combination order. The property tests additionally pin the span-tree
//! shape: child intervals nest inside their parents and sibling stages
//! appear in cascade order (`check_well_formed`).

use probdb::obs::{check_well_formed, span, with_tracer, SpanRecord, Stage, Tracer};
use probdb::par::{with_pool, Pool};
use probdb::{ProbDb, QueryOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_db(n: u64) -> ProbDb {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    ProbDb::from_tuple_db(pdb_data::generators::bipartite(
        n,
        0.7,
        (0.15, 0.85),
        &mut rng,
    ))
}

/// Runs `f` under a fresh tracer with a root `query` span, returning its
/// result and the recorded span tree.
fn traced<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let tracer = Tracer::new();
    let out = with_tracer(&tracer, || {
        let _root = span(Stage::Query);
        f()
    });
    (out, tracer.records())
}

/// Asserts `f` returns the same value traced and untraced at pools 1/2/8,
/// and that every recorded span tree is well-formed.
fn tracing_invariant<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> Vec<SpanRecord> {
    let mut last_spans = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = Pool::new(threads);
        let off = with_pool(&pool, &f);
        let (on, spans) = with_pool(&pool, || traced(&f));
        assert_eq!(
            off, on,
            "tracing changed the result on a {threads}-thread pool"
        );
        assert!(!spans.is_empty(), "no spans recorded at {threads} threads");
        if let Err(e) = check_well_formed(&spans) {
            panic!("malformed span tree at {threads} threads: {e}");
        }
        last_spans = spans;
    }
    last_spans
}

/// The full observable Boolean answer: probability bits, engine, and the
/// standard error's bits (present only on the sampled path — equal bits
/// mean the RNG drew the identical sequence).
fn fo_fingerprint(db: &ProbDb, query: &str, opts: &QueryOptions) -> (u64, String, Option<u64>) {
    let a = db
        .query_fo(&probdb::logic::parse_fo(query).unwrap(), opts)
        .unwrap();
    (
        a.probability.to_bits(),
        format!("{:?}", a.method),
        a.std_error.map(f64::to_bits),
    )
}

#[test]
fn lifted_queries_are_tracing_invariant() {
    let db = test_db(4);
    let opts = QueryOptions::default();
    let spans =
        tracing_invariant(|| fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y)", &opts));
    assert!(
        spans.iter().any(|s| s.stage == Stage::Lifted),
        "lifted stage must be recorded: {spans:?}"
    );
}

#[test]
fn grounded_queries_are_tracing_invariant() {
    let db = test_db(4);
    let opts = QueryOptions::default();
    let spans = tracing_invariant(|| {
        fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y) & T(y)", &opts)
    });
    for stage in [Stage::Lifted, Stage::Compile, Stage::Ground] {
        assert!(
            spans.iter().any(|s| s.stage == stage),
            "missing {stage:?} in {spans:?}"
        );
    }
}

#[test]
fn approximate_queries_draw_identical_rng_sequences_under_tracing() {
    let db = test_db(6);
    // A tiny exact budget forces the Karp–Luby sampler; equal std_error
    // bits on/off prove the tracer never consumed or reseeded the RNG.
    let opts = QueryOptions {
        exact_budget: 2,
        samples: 20_000,
        ..Default::default()
    };
    let spans = tracing_invariant(|| {
        let fp = fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y) & T(y)", &opts);
        assert!(fp.2.is_some(), "expected the sampled path");
        fp
    });
    assert!(
        spans.iter().any(|s| s.stage == Stage::Sample),
        "sample stage must be recorded: {spans:?}"
    );
}

#[test]
fn answers_rows_are_tracing_invariant() {
    let db = test_db(5);
    let cq = probdb::logic::parse_cq("R(x), S(x,y), T(y)").unwrap();
    let head = [probdb::logic::Var::new("x")];
    let opts = QueryOptions::default();
    let rows = tracing_invariant(|| {
        db.query_answers(&cq, &head, &opts)
            .unwrap()
            .into_iter()
            .map(|r| (r.values, r.probability.to_bits(), format!("{:?}", r.method)))
            .collect::<Vec<_>>()
    });
    drop(rows);
}

#[test]
fn open_world_intervals_are_tracing_invariant() {
    let db = test_db(4);
    let fo = probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y)").unwrap();
    let opts = QueryOptions::default();
    tracing_invariant(|| {
        let (lo, hi) = db.query_open_world(&fo, 0.2, &opts).unwrap();
        (lo.probability.to_bits(), hi.probability.to_bits())
    });
}

#[test]
fn server_queries_are_tracing_invariant_end_to_end() {
    // The service path (cache, spans, timeout plumbing) with slowlog
    // tracing on vs off: responses must be byte-identical.
    use probdb::server::{Service, ServiceOptions};
    use std::time::Duration;
    let lines = [
        "query exists x. exists y. R(x) & S(x,y)",
        "query exists x. exists y. R(x) & S(x,y) & T(y)",
        "answers x : R(x), S(x,y)",
        "open 0.2 exists x. exists y. R(x) & S(x,y)",
        "query exists x. exists y. R(x) & S(x,y)", // cache hit
    ];
    let run = |threshold: Option<Duration>| {
        let pool = Pool::new(2);
        with_pool(&pool, || {
            let svc = Service::new(
                test_db(4),
                ServiceOptions {
                    query_timeout: Duration::ZERO,
                    slowlog_threshold: threshold,
                    ..ServiceOptions::default()
                },
            );
            lines
                .iter()
                .map(|l| svc.handle_line(l).0)
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(None), run(Some(Duration::ZERO)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any traced query produces a well-formed span tree: every parent
    /// exists, child intervals nest inside their parents, and sibling
    /// stages appear in cascade (rank) order.
    #[test]
    fn span_trees_are_well_formed(n in 2u64..6, qi in 0usize..4, budget in 1u64..64) {
        let db = test_db(n);
        let queries = [
            "exists x. exists y. R(x) & S(x,y)",
            "exists x. exists y. R(x) & S(x,y) & T(y)",
            "exists x. R(x) & T(x)",
            "exists x. exists y. S(x,y) & T(y)",
        ];
        let opts = QueryOptions {
            exact_budget: budget,
            samples: 2_000,
            ..Default::default()
        };
        let fo = probdb::logic::parse_fo(queries[qi]).unwrap();
        let (_, records) = traced(|| db.query_fo(&fo, &opts));
        prop_assert!(!records.is_empty(), "no spans recorded");
        let shape = check_well_formed(&records);
        prop_assert!(shape.is_ok(), "malformed tree: {:?}", shape);
        // The root query span must enclose every engine stage.
        let root = records.iter().find(|r| r.stage == Stage::Query).unwrap();
        for r in &records {
            if r.id != root.id {
                prop_assert!(r.start_us >= root.start_us);
                prop_assert!(r.start_us + r.dur_us <= root.start_us + root.dur_us);
            }
        }
    }
}
