//! Thread-count invariance: every query kind returns **bit-identical**
//! results whether the engine pool has 1 thread or 8.
//!
//! This is the contract that makes `PROBDB_THREADS` safe to tune freely:
//! Karp–Luby chunks its samples with per-chunk seeds, the parallel DPLL
//! preserves the sequential floating-point combination order, and the
//! per-row fan-outs (`query_answers`, view builds) keep input order. The
//! tests run each query under explicit pools via `with_pool`, which is
//! exactly what `PROBDB_THREADS=1` vs `PROBDB_THREADS=8` selects globally.

use probdb::par::{with_pool, Pool};
use probdb::views::{ViewDef, ViewManager, ViewOptions};
use probdb::{ProbDb, QueryOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `f` under a fresh pool of each size and asserts all outputs equal.
fn invariant_under_pools<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
    let baseline = with_pool(&Pool::new(1), &f);
    for threads in [2, 8] {
        let out = with_pool(&Pool::new(threads), &f);
        assert_eq!(out, baseline, "diverged at {threads} threads");
    }
    baseline
}

fn test_db(n: u64) -> ProbDb {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    ProbDb::from_tuple_db(pdb_data::generators::bipartite(
        n,
        0.7,
        (0.15, 0.85),
        &mut rng,
    ))
}

/// `(bits of probability, method)` — the full observable Boolean answer.
fn fo_fingerprint(db: &ProbDb, query: &str, opts: &QueryOptions) -> (u64, String, Option<u64>) {
    let a = db
        .query_fo(&probdb::logic::parse_fo(query).unwrap(), opts)
        .unwrap();
    (
        a.probability.to_bits(),
        format!("{:?}", a.method),
        a.std_error.map(f64::to_bits),
    )
}

#[test]
fn lifted_queries_are_pool_size_invariant() {
    let db = test_db(4);
    let opts = QueryOptions::default();
    let (_, method, _) =
        invariant_under_pools(|| fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y)", &opts));
    assert_eq!(method, "Lifted");
}

#[test]
fn grounded_queries_are_pool_size_invariant() {
    let db = test_db(4);
    let opts = QueryOptions::default();
    let (_, method, _) = invariant_under_pools(|| {
        fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y) & T(y)", &opts)
    });
    assert_eq!(method, "Grounded");
}

#[test]
fn approximate_queries_are_pool_size_invariant() {
    let db = test_db(6);
    // A tiny exact budget forces the Karp–Luby path.
    let opts = QueryOptions {
        exact_budget: 2,
        samples: 20_000,
        ..Default::default()
    };
    let (_, method, std_error) = invariant_under_pools(|| {
        fo_fingerprint(&db, "exists x. exists y. R(x) & S(x,y) & T(y)", &opts)
    });
    assert_eq!(method, "Approximate");
    assert!(std_error.is_some());
}

#[test]
fn answers_cq_rows_are_pool_size_invariant() {
    let db = test_db(5);
    let cq = probdb::logic::parse_cq("R(x), S(x,y), T(y)").unwrap();
    let head = [probdb::logic::Var::new("x")];
    let opts = QueryOptions::default();
    let rows = invariant_under_pools(|| {
        db.query_answers(&cq, &head, &opts)
            .unwrap()
            .into_iter()
            .map(|r| (r.values, r.probability.to_bits(), format!("{:?}", r.method)))
            .collect::<Vec<_>>()
    });
    assert!(!rows.is_empty(), "fixture should produce answer rows");
}

#[test]
fn views_refresh_is_pool_size_invariant() {
    let build = || {
        // The whole lifecycle runs under the ambient pool: initial build,
        // staleness via insert, then a full refresh_all.
        let mut db = test_db(4);
        let mut views = ViewManager::with_options(ViewOptions::default());
        views
            .create(
                "vb",
                ViewDef::boolean("exists x. exists y. R(x) & S(x,y) & T(y)").unwrap(),
                &db,
            )
            .unwrap();
        views
            .create(
                "va",
                ViewDef::answers(&["x".into()], "R(x), S(x,y), T(y)").unwrap(),
                &db,
            )
            .unwrap();
        db.insert("R", [17], 0.35);
        views.on_insert("R", db.relation_version("R"));
        type ViewPrint = (String, String, Vec<(Vec<u64>, u64)>);
        let outcomes = views.refresh_all(&db).unwrap();
        let mut fingerprint: Vec<ViewPrint> = Vec::new();
        for view in views.iter() {
            let rows = view
                .rows()
                .iter()
                .map(|r| (r.values.clone(), r.probability.to_bits()))
                .collect();
            fingerprint.push((
                view.name().to_string(),
                view.backend_summary().to_string(),
                rows,
            ));
        }
        (format!("{outcomes:?}"), fingerprint)
    };
    invariant_under_pools(build);
}
