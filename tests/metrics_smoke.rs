//! Metrics smoke test: boot the real `probdb-serve` binary, drive it over
//! its TCP wire protocol, scrape the `metrics` command, and validate the
//! output with the in-tree Prometheus text-exposition parser
//! (`probdb::obs::expo`). This is the CI `metrics` job's test.
//!
//! Asserted here, per the observability acceptance criteria: the scrape is
//! well-formed exposition containing at least one counter, gauge, and
//! histogram from **each** of server, store, replica, kernel, and views;
//! `explain analyze` over the wire renders a multi-stage span tree with
//! per-stage timings and the chosen engine; the slowlog captures traced
//! queries.

use probdb::obs::expo::{validate, FamilyKind};
use probdb::server::protocol::read_framed;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};

/// Spawns `probdb-serve` on an ephemeral port and returns the child plus
/// the address parsed from its "listening on" banner.
fn spawn_server(extra_args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_probdb-serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg("2")
        .args(extra_args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn probdb-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line).expect("read banner") == 0 {
            let _ = child.kill();
            panic!("probdb-serve exited before printing the listening banner");
        }
        if let Some(rest) = line.strip_prefix("probdb-serve listening on ") {
            let addr_text = rest.split_whitespace().next().expect("addr token");
            break addr_text.parse::<SocketAddr>().expect("parse addr");
        }
    };
    // Keep draining stderr so the child can never block on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

/// One wire session: sends each line, collects each framed response.
fn session(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").expect("send");
        writer.flush().expect("flush");
        let resp = read_framed(&mut reader)
            .expect("read response")
            .unwrap_or_else(|| panic!("connection closed before reply to {line:?}"));
        responses.push(resp);
    }
    responses
}

#[test]
fn scrape_is_valid_exposition_covering_every_layer() {
    let (mut child, addr) = spawn_server(&["--timeout-ms", "0", "--slowlog-threshold", "0"]);
    let responses = session(
        addr,
        &[
            "insert R 1 0.5",
            "insert S 1 2 0.8",
            "insert S 1 3 0.25",
            "insert T 2 0.4",
            "insert T 3 0.9",
            "view create v query exists x. exists y. R(x) & S(x,y)",
            "query exists x. exists y. R(x) & S(x,y)",
            "explain analyze exists x. exists y. R(x) & S(x,y) & T(y)",
            "query exists x. exists y. R(x) & S(x,y) & T(y)",
            "trace last",
            "slowlog",
            "metrics",
            "shutdown",
        ],
    );
    let _ = child.wait();

    let explain = &responses[7];
    assert!(explain.contains("p = "), "answer first: {explain}");
    assert!(
        explain.contains("query ") && explain.contains("µs"),
        "span tree with timings: {explain}"
    );
    assert!(explain.contains("engine="), "chosen engine: {explain}");
    for stage in ["parse ", "cache ", "lifted ", "ground "] {
        assert!(explain.contains(stage), "missing {stage:?} in: {explain}");
    }

    let trace = &responses[9];
    assert!(trace.contains("µs total"), "{trace}");
    let slowlog = &responses[10];
    assert!(
        slowlog.contains("exists x. exists y. R(x) & S(x,y)"),
        "zero threshold must capture queries: {slowlog}"
    );

    let metrics = &responses[11];
    let summary = validate(metrics)
        .unwrap_or_else(|e| panic!("invalid Prometheus exposition: {e}\n{metrics}"));
    // One counter, one gauge, and one histogram from each layer.
    let required = [
        ("pdb_server_queries_total", FamilyKind::Counter),
        ("pdb_server_connections_active", FamilyKind::Gauge),
        ("pdb_server_query_latency_us", FamilyKind::Histogram),
        ("pdb_store_wal_appends_total", FamilyKind::Counter),
        ("pdb_store_next_lsn", FamilyKind::Gauge),
        ("pdb_store_fsync_us", FamilyKind::Histogram),
        ("pdb_replica_records_applied_total", FamilyKind::Counter),
        ("pdb_replica_lag_records", FamilyKind::Gauge),
        ("pdb_replica_apply_us", FamilyKind::Histogram),
        ("pdb_kernel_evals_total", FamilyKind::Counter),
        ("pdb_kernel_bytes_per_eval", FamilyKind::Gauge),
        ("pdb_kernel_program_bytes", FamilyKind::Histogram),
        ("pdb_views_recompiles_total", FamilyKind::Counter),
        ("pdb_views_registered", FamilyKind::Gauge),
        ("pdb_views_refresh_us", FamilyKind::Histogram),
        ("pdb_par_jobs_total", FamilyKind::Counter),
        ("pdb_par_utilization", FamilyKind::Gauge),
    ];
    for (family, kind) in required {
        assert_eq!(
            summary.kind(family),
            Some(kind),
            "family {family} missing or mistyped in scrape:\n{metrics}"
        );
    }
    // The memory-only server ran queries, so the engine counters moved.
    assert!(
        metrics.contains("pdb_server_queries_total{engine=\"lifted\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("pdb_views_registered 1"),
        "view gauge published at scrape time: {metrics}"
    );
}

#[test]
fn durable_server_moves_store_metrics() {
    let dir = std::env::temp_dir().join(format!("probdb-metrics-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (mut child, addr) = spawn_server(&[
        "--timeout-ms",
        "0",
        "--data-dir",
        dir.to_str().expect("utf-8 temp dir"),
    ]);
    let responses = session(
        addr,
        &["insert R 1 0.5", "insert R 2 0.25", "metrics", "shutdown"],
    );
    let _ = child.wait();
    std::fs::remove_dir_all(&dir).ok();

    let metrics = &responses[2];
    validate(metrics).unwrap_or_else(|e| panic!("invalid exposition: {e}"));
    // Two WAL appends were acknowledged before the scrape.
    assert!(
        metrics.contains("pdb_store_wal_appends_total 2"),
        "{metrics}"
    );
    assert!(metrics.contains("pdb_store_next_lsn 2"), "{metrics}");
}
