//! Cross-engine agreement: every inference path must compute the same
//! `p_D(Q)` — brute-force enumeration (the definition), lifted inference,
//! grounded DPLL, OBDD compilation, decision-DNNF compilation, and safe
//! plans — on randomized small databases.

use probdb::compile::{order, Obdd};
use probdb::data::{generators, TupleDb};
use probdb::lifted::LiftedEngine;
use probdb::lineage::{eval, lineage, ucq_dnf_lineage};
use probdb::logic::{parse_fo, parse_ucq};
use probdb::num::assert_close;
use probdb::wmc::{probability_of_expr, DpllOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_db(seed: u64) -> TupleDb {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_tid(
        3,
        &[
            generators::RelationSpec::new("R", 1, 2),
            generators::RelationSpec::new("S", 2, 4),
            generators::RelationSpec::new("T", 1, 2),
        ],
        (0.1, 0.9),
        &mut rng,
    )
}

fn probs_of(db: &TupleDb) -> Vec<f64> {
    db.index().iter().map(|(_, r)| r.prob).collect()
}

#[test]
fn all_engines_agree_on_liftable_queries() {
    let queries = [
        "R(x), S(x,y)",
        "[R(x)] | [T(u)]",
        "[R(x), S(x,y)] | [T(u), S(u,v)]",
        "R(x), S(x,y), T(u), S(u,v)",
    ];
    for seed in 0..4 {
        let db = random_db(seed);
        let idx = db.index();
        let probs = probs_of(&db);
        for q in queries {
            let ucq = parse_ucq(q).unwrap();
            let truth = eval::brute_force_probability(&ucq.to_fo(), &db);
            // Lifted.
            let lifted = LiftedEngine::new(&db)
                .probability_ucq(&ucq)
                .unwrap_or_else(|e| panic!("{q} liftable: {e}"));
            assert_close(lifted, truth, 1e-9);
            // Grounded DPLL over the lineage.
            let lin = ucq_dnf_lineage(&ucq, &db, &idx).to_expr();
            let (grounded, _) = probability_of_expr(&lin, &probs, DpllOptions::default());
            assert_close(grounded, truth, 1e-9);
            // OBDD compilation.
            let obdd = Obdd::compile(&lin, &order::identity_order(idx.len() as u32));
            assert_close(obdd.probability(&probs), truth, 1e-9);
        }
    }
}

#[test]
fn grounded_engines_agree_on_hard_queries() {
    for seed in 0..4 {
        let db = random_db(seed);
        let idx = db.index();
        let probs = probs_of(&db);
        let ucq = parse_ucq("R(x), S(x,y), T(y)").unwrap();
        let truth = eval::brute_force_probability(&ucq.to_fo(), &db);
        let lin = ucq_dnf_lineage(&ucq, &db, &idx).to_expr();
        let (grounded, _) = probability_of_expr(&lin, &probs, DpllOptions::default());
        assert_close(grounded, truth, 1e-9);
        let obdd = Obdd::compile(&lin, &order::hierarchical_order(&idx));
        assert_close(obdd.probability(&probs), truth, 1e-9);
        // Lifted must refuse (Theorem 4.3: non-hierarchical sjf CQ).
        assert!(LiftedEngine::new(&db).probability_ucq(&ucq).is_err());
    }
}

#[test]
fn fo_lineage_and_direct_grounding_agree() {
    // Universal and mixed-quantifier sentences through the generic lineage.
    let sentences = [
        "forall x. forall y. (S(x,y) -> R(x))",
        "forall x. (R(x) | T(x))",
        "forall x. exists y. S(x,y)",
        "exists x. R(x) & !T(x)",
    ];
    for seed in 0..3 {
        let db = random_db(seed);
        let idx = db.index();
        let probs = probs_of(&db);
        for s in sentences {
            let fo = parse_fo(s).unwrap();
            let truth = eval::brute_force_probability(&fo, &db);
            let lin = lineage(&fo, &db, &idx);
            let (p, _) = probability_of_expr(&lin, &probs, DpllOptions::default());
            assert_close(p, truth, 1e-9);
        }
    }
}

#[test]
fn engine_cascade_matches_brute_force() {
    for seed in 0..3 {
        let db = random_db(seed);
        let engine = probdb::ProbDb::from_tuple_db(db.clone());
        for q in [
            "exists x. exists y. R(x) & S(x,y)",
            "exists x. exists y. R(x) & S(x,y) & T(y)",
            "forall x. forall y. (S(x,y) -> R(x))",
        ] {
            let fo = parse_fo(q).unwrap();
            let truth = eval::brute_force_probability(&fo, &db);
            let answer = engine.query(q).unwrap();
            assert_close(answer.probability, truth, 1e-9);
        }
    }
}

#[test]
fn duality_bridge_holds_end_to_end() {
    // p_D(Q) = 1 − p_D̄(dual(Q)) on random instances for several sentences.
    for seed in 0..3 {
        let mut db = random_db(seed);
        db.extend_domain(0..3);
        for s in ["forall x. forall y. (R(x) | S(x,y))", "forall x. R(x)"] {
            let fo = parse_fo(s).unwrap();
            let lhs = eval::brute_force_probability(&fo, &db);
            let comp = db.complemented();
            let dual = fo.dual();
            // The complemented database can have up to 3 + 9 + 3 tuples: use
            // grounded inference rather than enumeration.
            let idx = comp.index();
            let lin = lineage(&dual, &comp, &idx);
            let probs: Vec<f64> = idx.iter().map(|(_, r)| r.prob).collect();
            let (p, _) = probability_of_expr(&lin, &probs, DpllOptions::default());
            assert_close(lhs, 1.0 - p, 1e-9);
        }
    }
}
