//! Concurrency and cache-coherence tests for `pdb-server`: spawn the TCP
//! server on a loopback port, fire concurrent clients mixing `insert` and
//! `query`, and check that
//!
//! (a) every response matches single-threaded `ProbDb` evaluation, and
//! (b) cache invalidation never serves a stale probability after an insert.

use probdb::server::protocol::{format_answer, read_framed};
use probdb::server::{serve, ServerOptions};
use probdb::ProbDb;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        read_framed(&mut self.reader)
            .expect("read response")
            .expect("server closed mid-session")
    }
}

fn start_server(workers: usize) -> (probdb::server::ServerHandle, SocketAddr) {
    let handle = serve(
        ProbDb::new(),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers,
            query_timeout: Duration::ZERO, // deterministic: no degraded answers
            cache_capacity: 256,
        },
    )
    .expect("bind server");
    let addr = handle.local_addr();
    (handle, addr)
}

/// The Figure-1-style fixture used by every test: R(1), R(2), S(1,·), S(2,·).
const SETUP: &[&str] = &[
    "insert R 1 0.1",
    "insert R 2 0.2",
    "insert S 1 10 0.4",
    "insert S 1 11 0.5",
    "insert S 2 10 0.6",
    "insert T 10 0.7",
    "insert T 11 0.3",
];

const QUERIES: &[&str] = &[
    "query exists x. exists y. R(x) & S(x,y)",
    "query exists x. exists y. R(x) & S(x,y) & T(y)", // #P-hard shape → grounded
    "query exists x. R(x)",
    "classify R(x), S(x,y), T(y)",
    "classify R(x), S(x,y)",
    "answers x : R(x), S(x,y)",
];

/// Replays the same commands through a local single-threaded `ProbDb` and
/// the CLI formatters, producing the expected wire payload per query.
fn expected_responses() -> Vec<(String, String)> {
    let mut db = ProbDb::new();
    for line in SETUP {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let prob: f64 = parts.pop().unwrap().parse().unwrap();
        let rel = parts[1].to_string();
        let tuple: Vec<u64> = parts[2..].iter().map(|c| c.parse().unwrap()).collect();
        db.insert(&rel, tuple, prob);
    }
    QUERIES
        .iter()
        .map(|q| {
            let expected = single_threaded_answer(&db, q);
            (q.to_string(), expected)
        })
        .collect()
}

fn single_threaded_answer(db: &ProbDb, command: &str) -> String {
    let (kind, body) = command.split_once(' ').unwrap();
    match kind {
        "query" => format_answer(&db.query(body).expect("local query")),
        "classify" => {
            let ucq = probdb::logic::parse_ucq(body).unwrap();
            format!(
                "{}\n",
                probdb::server::protocol::format_complexity(db.classify(&ucq))
            )
        }
        "answers" => {
            let (head, cq) = body.split_once(':').unwrap();
            let head: Vec<String> = head
                .split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect();
            let parsed = probdb::logic::parse_cq(cq.trim()).unwrap();
            let vars: Vec<probdb::logic::Var> =
                head.iter().map(|v| probdb::logic::Var::new(v)).collect();
            let rows = db
                .query_answers(&parsed, &vars, &probdb::QueryOptions::default())
                .unwrap();
            probdb::server::protocol::format_answer_tuples(&head, &rows)
        }
        other => panic!("unhandled command kind {other}"),
    }
}

#[test]
fn concurrent_clients_match_single_threaded_evaluation() {
    let (server, addr) = start_server(4);
    // Load the fixture through one session.
    let mut loader = Client::connect(addr);
    for line in SETUP {
        assert_eq!(loader.send(line), "", "insert should be silent");
    }
    drop(loader);
    let expected = expected_responses();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Different interleavings per thread: rotate the workload.
                for round in 0..5 {
                    for (i, (query, want)) in expected.iter().enumerate() {
                        let (query, want) = {
                            let j = (i + t + round) % expected.len();
                            let _ = (query, want);
                            &expected[j]
                        };
                        let got = client.send(query);
                        assert_eq!(&got, want, "thread {t} round {round}: {query}");
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Cache effectiveness: 4 threads × 5 rounds × 6 commands, but only 6
    // distinct cache keys — almost everything after the first pass is a hit.
    let stats = server.service().stats();
    assert!(
        stats.cache_hits() > 0,
        "repeated identical queries should hit the cache"
    );
    server.shutdown();
}

#[test]
fn no_stale_probability_after_insert_same_session() {
    let (server, addr) = start_server(4);
    let mut client = Client::connect(addr);
    for line in SETUP {
        client.send(line);
    }
    let q = "query exists x. exists y. R(x) & S(x,y)";
    let before = client.send(q);
    // Warm the cache, then mutate: same session guarantees ordering.
    assert_eq!(client.send(q), before, "warm read");
    client.send("insert S 2 11 0.9");
    client.send("insert R 3 0.5");
    client.send("insert S 3 12 0.8");

    // Recompute the truth locally on the *new* database.
    let mut db = ProbDb::new();
    let all: Vec<&str> = SETUP
        .iter()
        .copied()
        .chain(["insert S 2 11 0.9", "insert R 3 0.5", "insert S 3 12 0.8"])
        .collect();
    for line in &all {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let prob: f64 = parts.pop().unwrap().parse().unwrap();
        let rel = parts[1].to_string();
        let tuple: Vec<u64> = parts[2..].iter().map(|c| c.parse().unwrap()).collect();
        db.insert(&rel, tuple, prob);
    }
    let want = format_answer(&db.query("exists x. exists y. R(x) & S(x,y)").unwrap());
    let after = client.send(q);
    assert_eq!(after, want, "must reflect the inserts, not the cache");
    assert_ne!(after, before, "fixture change must move the probability");
    server.shutdown();
}

#[test]
fn writers_and_readers_race_without_stale_or_torn_answers() {
    // One writer inserts fresh S-tuples for x=2 while readers hammer the
    // same query. Every response must equal the answer for *some* prefix of
    // the writer's inserts (monotone query ⇒ strictly increasing p): no
    // torn states, no probability from the cache's past.
    let (server, addr) = start_server(6);
    let mut loader = Client::connect(addr);
    for line in SETUP {
        loader.send(line);
    }
    let q = "query exists x. exists y. R(x) & S(x,y)";

    // Precompute the full chain of legal answers locally.
    let extra: Vec<String> = (0..10)
        .map(|i| format!("insert S 2 {} 0.35", 20 + i))
        .collect();
    let mut db = ProbDb::new();
    for line in SETUP {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let prob: f64 = parts.pop().unwrap().parse().unwrap();
        let rel = parts[1].to_string();
        let tuple: Vec<u64> = parts[2..].iter().map(|c| c.parse().unwrap()).collect();
        db.insert(&rel, tuple, prob);
    }
    let mut legal: Vec<String> = vec![format_answer(
        &db.query("exists x. exists y. R(x) & S(x,y)").unwrap(),
    )];
    for line in &extra {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let prob: f64 = parts.pop().unwrap().parse().unwrap();
        let tuple: Vec<u64> = parts[2..].iter().map(|c| c.parse().unwrap()).collect();
        db.insert("S", tuple, prob);
        legal.push(format_answer(
            &db.query("exists x. exists y. R(x) & S(x,y)").unwrap(),
        ));
    }

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|t| {
            let stop = std::sync::Arc::clone(&stop);
            let legal = legal.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut seen = 0usize; // index into `legal`: must be monotone
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = client.send(q);
                    match legal[seen..].iter().position(|l| l == &got) {
                        Some(offset) => seen += offset,
                        None => panic!(
                            "thread {t}: response not a legal state or went backwards \
                             (stale cache read): {got:?}, already at state {seen}"
                        ),
                    }
                }
            })
        })
        .collect();

    let mut writer = Client::connect(addr);
    for line in &extra {
        writer.send(line);
        std::thread::sleep(Duration::from_millis(15));
    }
    // Let readers observe the final state, then stop them.
    std::thread::sleep(Duration::from_millis(80));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // After the dust settles, a fresh session must see exactly the final
    // answer (cache must have been invalidated ten times).
    let mut checker = Client::connect(addr);
    assert_eq!(&checker.send(q), legal.last().unwrap());
    assert_eq!(
        server.service().db_version(),
        (SETUP.len() + extra.len()) as u64
    );
    server.shutdown();
}

#[test]
fn unrelated_insert_does_not_evict_cached_queries() {
    let (server, addr) = start_server(2);
    let mut client = Client::connect(addr);
    for line in SETUP {
        client.send(line);
    }
    let q = "query exists x. exists y. R(x) & S(x,y)";
    let before = client.send(q); // miss — populates the cache
    let hits0 = server.service().stats().cache_hits();

    // A UCQ's answer depends only on the relations it mentions, and the
    // cache keys UCQs by those relations' versions: inserting into Z must
    // leave the entry live.
    client.send("insert Z 99 0.5");
    assert_eq!(client.send(q), before);
    assert_eq!(
        server.service().stats().cache_hits(),
        hits0 + 1,
        "insert into an unmentioned relation must not evict the UCQ entry"
    );

    // Inserting into a mentioned relation still invalidates.
    client.send("insert S 2 11 0.9");
    let after = client.send(q);
    assert_ne!(after, before, "mentioned-relation insert must invalidate");
    assert_eq!(
        server.service().stats().cache_hits(),
        hits0 + 1,
        "the post-insert read must be a miss, not a stale hit"
    );
    server.shutdown();
}

#[test]
fn views_stay_correct_under_concurrent_updates() {
    // A writer streams probability updates over one session while readers
    // hammer `view show v` on others. Every probability served must equal
    // the view's query evaluated on *some* prefix of the update stream
    // (each update only raises p, so legal states are strictly increasing),
    // and after a final refresh the view matches from-scratch evaluation.
    let (server, addr) = start_server(6);
    let mut loader = Client::connect(addr);
    for line in SETUP {
        loader.send(line);
    }
    let q = "exists x. exists y. R(x) & S(x,y)";
    let created = loader.send(&format!("view create v query {q}"));
    assert!(created.contains("materialized (circuit)"), "{created}");

    // Precompute the chain of legal probabilities locally.
    let updates: Vec<String> = (0..8)
        .map(|i| format!("update R 1 0.{}", 15 + 10 * i))
        .collect();
    let mut db = ProbDb::new();
    for line in SETUP {
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let prob: f64 = parts.pop().unwrap().parse().unwrap();
        let rel = parts[1].to_string();
        let tuple: Vec<u64> = parts[2..].iter().map(|c| c.parse().unwrap()).collect();
        db.insert(&rel, tuple, prob);
    }
    let render = |db: &ProbDb| format!("p = {:.6}", db.query(q).unwrap().probability);
    let mut legal = vec![render(&db)];
    for line in &updates {
        let parts: Vec<&str> = line.split_whitespace().collect();
        let t = probdb::data::Tuple::new(vec![parts[2].parse().unwrap()]);
        db.update_prob("R", &t, parts[3].parse().unwrap()).unwrap();
        legal.push(render(&db));
    }

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let stop = std::sync::Arc::clone(&stop);
            let legal = legal.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut seen = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let got = client.send("view show v");
                    let line = got.lines().next().unwrap_or("").to_string();
                    match legal[seen..].iter().position(|l| line.starts_with(l)) {
                        Some(offset) => seen += offset,
                        None => panic!(
                            "reader {t}: view served a probability that is not a \
                             legal state or went backwards: {line:?} at state {seen}"
                        ),
                    }
                }
            })
        })
        .collect();

    let mut writer = Client::connect(addr);
    for line in &updates {
        assert_eq!(writer.send(line), "", "update should be silent");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // All updates were absorbable incrementally: refresh must say fresh,
    // and the final probability must match from-scratch evaluation.
    let mut checker = Client::connect(addr);
    assert_eq!(checker.send("view refresh v"), "view v: fresh\n");
    let got = checker.send("view show v");
    assert!(
        got.starts_with(legal.last().unwrap().as_str()),
        "final view state {got:?} != from-scratch {:?}",
        legal.last().unwrap()
    );
    let stats = checker.send("stats");
    assert!(stats.contains("incremental=8"), "{stats}");
    server.shutdown();
}

#[test]
fn stats_over_the_wire_report_methods_and_cache() {
    let (server, addr) = start_server(2);
    let mut client = Client::connect(addr);
    for line in SETUP {
        client.send(line);
    }
    let lifted = "query exists x. exists y. R(x) & S(x,y)";
    let grounded = "query exists x. exists y. R(x) & S(x,y) & T(y)";
    client.send(lifted);
    client.send(lifted); // cache hit, still counted as Lifted
    client.send(grounded);
    let stats = client.send("stats");
    for needle in [
        "lifted=2",
        "grounded=1",
        "safe_plan=0",
        "approximate=0",
        "hits=1",
        "misses=2",
        "latency_us: p50=",
        "timeouts: 0",
    ] {
        assert!(stats.contains(needle), "missing {needle:?} in:\n{stats}");
    }
    server.shutdown();
}
