//! End-to-end checks of the paper's numbered claims, one test per claim.

use probdb::data::{generators, SymmetricDb};
use probdb::lineage::eval::brute_force_probability;
use probdb::logic::{parse_cq, parse_fo, parse_ucq};
use probdb::num::assert_close;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 2.1: the closed-form probability of the inclusion constraint on
/// the Fig. 1 database.
#[test]
fn example_2_1() {
    let p = [0.15, 0.25, 0.35];
    let q = [0.45, 0.55, 0.65, 0.75, 0.85, 0.95];
    let (db, _) = generators::fig1(p, q);
    let sentence = parse_fo("forall x. forall y. (S(x,y) -> R(x))").unwrap();
    let expected = (p[0] + (1.0 - p[0]) * (1.0 - q[0]) * (1.0 - q[1]))
        * (p[1] + (1.0 - p[1]) * (1.0 - q[2]) * (1.0 - q[3]) * (1.0 - q[4]))
        * (1.0 - q[5]);
    assert_close(brute_force_probability(&sentence, &db), expected, 1e-10);
    assert_close(
        probdb::lifted::probability_fo(&sentence, &db).unwrap(),
        expected,
        1e-10,
    );
}

/// Theorem 2.2 / §2 dual query: `H₀` and its dual have equal hardness; here
/// we verify the semantic bridge `p_D(H₀) = 1 − p_D̄(dual H₀)`.
#[test]
fn dual_query_equivalence() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut db = generators::bipartite(2, 0.75, (0.2, 0.8), &mut rng);
    db.extend_domain(0..4);
    let h0 = parse_fo("forall x. forall y. (R(x) | S(x,y) | T(y))").unwrap();
    let lhs = brute_force_probability(&h0, &db);
    let comp = db.complemented();
    let rhs = probdb::wmc::probability_of_query(&h0.dual(), &comp);
    assert_close(lhs, 1.0 - rhs, 1e-9);
}

/// Theorem 2.2's reduction instance: on PP2CNF databases,
/// `p(H₀) = p(⋀_{edges} (Xᵢ ∨ Yⱼ))` — verified against brute force.
#[test]
fn pp2cnf_reduction_is_faithful() {
    let h0 = parse_fo("forall x. forall y. (R(x) | S(x,y) | T(y))").unwrap();
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let db = generators::pp2cnf(3, 0.5, (0.3, 0.7), &mut rng);
        if db.tuple_count() > 15 {
            continue; // keep enumeration small
        }
        let truth = brute_force_probability(&h0, &db);
        let grounded = probdb::wmc::probability_of_query(&h0, &db);
        assert_close(grounded, truth, 1e-9);
    }
}

/// Theorem 4.3: hierarchical ⟺ liftable ⟺ safe plan, for sjf CQs.
#[test]
fn dichotomy_trifecta() {
    let mut rng = StdRng::seed_from_u64(3);
    let db = generators::random_tid(
        3,
        &[
            generators::RelationSpec::new("R", 1, 2),
            generators::RelationSpec::new("S", 2, 4),
            generators::RelationSpec::new("T", 1, 2),
        ],
        (0.2, 0.8),
        &mut rng,
    );
    for (q, easy) in [
        ("R(x), S(x,y)", true),
        ("R(x), S(x,y), T(y)", false),
        ("S(x,y), T(y)", true),
    ] {
        let cq = parse_cq(q).unwrap();
        assert_eq!(cq.is_hierarchical(), easy, "{q}");
        assert_eq!(
            probdb::lifted::LiftedEngine::new(&db)
                .probability_cq(&cq)
                .is_ok(),
            easy,
            "{q} liftability"
        );
        assert_eq!(
            probdb::plans::safe_plan(&cq).is_some(),
            easy,
            "{q} safe plan"
        );
    }
}

/// §5: `Q_J` needs inclusion/exclusion; basic rules alone fail, and the
/// result matches ground truth.
#[test]
fn section_5_qj_inclusion_exclusion() {
    let mut rng = StdRng::seed_from_u64(4);
    let db = generators::random_tid(
        3,
        &[
            generators::RelationSpec::new("R", 1, 2),
            generators::RelationSpec::new("S", 2, 4),
            generators::RelationSpec::new("T", 1, 2),
        ],
        (0.2, 0.8),
        &mut rng,
    );
    let qj = parse_cq("R(x), S(x,y), T(u), S(u,v)").unwrap();
    let mut engine = probdb::lifted::LiftedEngine::new(&db);
    let p = engine.probability_cq(&qj).expect("Q_J is liftable");
    assert_close(p, brute_force_probability(&qj.to_fo(), &db), 1e-9);
    let stats = engine.stats();
    assert!(
        stats.dual_expansions + stats.inclusion_exclusion > 0,
        "inclusion/exclusion machinery must fire: {stats:?}"
    );
}

/// Theorem 6.1: `Plan_{D₁} ≤ p_D(Q) ≤ Plan_D` across many random instances.
#[test]
fn theorem_6_1_sandwich() {
    let cq = parse_cq("R(x), S(x,y), T(y)").unwrap();
    for seed in 0..20 {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = generators::bipartite(2, 0.8, (0.1, 0.9), &mut rng);
        let truth = brute_force_probability(&cq.to_fo(), &db);
        let b = probdb::plans::bounds::bounds(&cq, &db);
        assert!(
            b.lower <= truth + 1e-9 && truth <= b.upper + 1e-9,
            "seed {seed}: {} ≤ {truth} ≤ {} violated",
            b.lower,
            b.upper
        );
    }
}

/// Theorem 7.1(i): OBDD sizes — linear for the hierarchical query under the
/// grouped order, and growing for the non-hierarchical one under any tried
/// order.
#[test]
fn theorem_7_1_obdd_shapes() {
    use probdb::compile::{order, Obdd};
    use probdb::lineage::ucq_dnf_lineage;
    // (a) hierarchical: size grows linearly in n under the grouped order.
    let mut sizes = Vec::new();
    for n in [2u64, 4, 6, 8] {
        let mut rng = StdRng::seed_from_u64(7);
        let db = generators::star(n, 1, 2, 0.5, &mut rng);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S1(x,y)").unwrap(), &db, &idx).to_expr();
        let obdd = Obdd::compile(&lin, &order::hierarchical_order(&idx));
        sizes.push(obdd.size());
    }
    // Linear: size(n) / n constant — allow slack, check sub-quadratic.
    let per_root_first = sizes[0] as f64 / 2.0;
    let per_root_last = sizes[3] as f64 / 8.0;
    assert!(
        per_root_last <= per_root_first * 1.5 + 2.0,
        "hierarchical OBDD should stay linear: {sizes:?}"
    );
    // (b) non-hierarchical: exponential growth in n (complete bipartite).
    let mut hard_sizes = Vec::new();
    for n in [2u64, 3, 4, 5] {
        let mut rng = StdRng::seed_from_u64(7);
        let db = generators::bipartite(n, 1.0, (0.5, 0.5), &mut rng);
        let idx = db.index();
        let lin = ucq_dnf_lineage(&parse_ucq("R(x), S(x,y), T(y)").unwrap(), &db, &idx).to_expr();
        let obdd = Obdd::compile(&lin, &order::hierarchical_order(&idx));
        hard_sizes.push(obdd.size());
    }
    // Exponential growth: each +1 to n at least doubles the OBDD
    // (Theorem 7.1(i-b): size ≥ (2ⁿ−1)/n under *every* order).
    for w in hard_sizes.windows(2) {
        assert!(
            w[1] >= 2 * w[0],
            "non-hierarchical OBDD should blow up: {hard_sizes:?}"
        );
    }
}

/// Figure 2: both circuits compute their formulas (sizes asserted in the
/// `pdb-compile` unit tests).
#[test]
fn figure_2_circuits() {
    let fbdd = probdb::compile::fig2::fig2a_fbdd();
    let dd = probdb::compile::fig2::fig2b_decision_dnnf();
    assert!(fbdd.size() > 0);
    dd.validate().unwrap();
}

/// Proposition 3.1: `p_MLN(Q) = p_D(Q | Γ)` on the Manager MLN.
#[test]
fn proposition_3_1() {
    let mln = probdb::mln::Mln::manager_example(2);
    let t = probdb::mln::translate(&mln);
    let q = parse_fo("exists m. exists e. Manager(m,e) & HighlyCompensated(m)").unwrap();
    assert_close(
        mln.probability(&q),
        probdb::mln::conditional_grounded(&q, &t.gamma, &t.db),
        1e-9,
    );
}

/// §8: the symmetric H₀ formula, the FO² cell algorithm, and brute force
/// all agree; Skolemization handles the existential.
#[test]
fn section_8_symmetric() {
    let mut db = SymmetricDb::new(2);
    db.set_relation("R", 1, 0.3)
        .set_relation("S", 2, 0.7)
        .set_relation("T", 1, 0.4);
    let closed = probdb::symmetric::h0_probability(2, 0.3, 0.7, 0.4);
    let q = probdb::symmetric::Fo2Query::forall_forall(parse_fo("R(x) | S(x,y) | T(y)").unwrap());
    let cell = probdb::symmetric::wfomc_probability(&q, &db);
    let brute = brute_force_probability(
        &parse_fo("forall x. forall y. (R(x) | S(x,y) | T(y))").unwrap(),
        &db.materialize(),
    );
    assert_close(closed, brute, 1e-9);
    assert_close(cell, brute, 1e-9);
}

/// Theorem 8.1 vs. Theorem 2.2 in one picture: the same query that needs
/// exponential grounded effort on arbitrary data is closed-form on
/// symmetric data at `n = 300`.
#[test]
fn symmetric_h0_scales_to_large_n() {
    let p = probdb::symmetric::h0_probability(300, 0.4, 0.99, 0.4);
    assert!((0.0..=1.0).contains(&p));
}
