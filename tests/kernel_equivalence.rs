//! Kernel equivalence: the flat SoA programs produced by `flatten()` are
//! **bit-identical** to the tree walks they replace.
//!
//! The flattening pass (crates/kernel) may only change *how* a circuit is
//! evaluated — one non-recursive forward loop over topologically ordered
//! arrays instead of a memoized recursion — never *what* it computes. Each
//! node combines its children with the same arithmetic in the same
//! left-to-right order, and each node is computed exactly once in both
//! schemes, so every intermediate f64 is the same bit pattern. These tests
//! pin that contract across
//!
//!   * all four circuit types (decision-DNNF, d-DNNF, OBDD, FBDD),
//!   * all five query kinds (lifted, grounded, approximate, answers-CQ,
//!     views),
//!   * pool sizes 1 / 2 / 8 (the engine must not care how the flat
//!     programs were produced or on how many threads), and
//!   * batch sizes 1 / 7 / 64 (the batched entry point runs the same
//!     per-node arithmetic per lane, so lane values cannot depend on how
//!     many lanes share the instruction stream).

use probdb::compile::{order, DecisionDnnf, Fbdd, Obdd};
use probdb::data::{generators, TupleDb};
use probdb::lineage::{ucq_dnf_lineage, BoolExpr, Cnf};
use probdb::logic::{parse_ucq, Var};
use probdb::par::{with_pool, Pool};
use probdb::views::{ViewDef, ViewManager, ViewOptions};
use probdb::wmc::{monte_carlo, Dpll, DpllOptions};
use probdb::{ProbDb, QueryOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 3] = [1, 7, 64];
const POOL_SIZES: [usize; 3] = [1, 2, 8];

// ---------------------------------------------------------------- fixtures

fn random_db(seed: u64) -> TupleDb {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::random_tid(
        3,
        &[
            generators::RelationSpec::new("R", 1, 2),
            generators::RelationSpec::new("S", 2, 4),
            generators::RelationSpec::new("T", 1, 2),
        ],
        (0.1, 0.9),
        &mut rng,
    )
}

fn probs_of(db: &TupleDb) -> Vec<f64> {
    db.index().iter().map(|(_, r)| r.prob).collect()
}

fn engine_db(n: u64) -> ProbDb {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    ProbDb::from_tuple_db(generators::bipartite(n, 0.7, (0.15, 0.85), &mut rng))
}

/// The lineage of the prototypical #P-hard query over `db`.
fn hard_lineage(db: &TupleDb) -> BoolExpr {
    let ucq = parse_ucq("R(x), S(x,y), T(y)").unwrap();
    ucq_dnf_lineage(&ucq, db, &db.index()).to_expr()
}

/// Runs the traced DPLL on the negated DNF of `expr` and rebuilds the
/// decision-DNNF from the trace (the §7 trace-as-circuit construction).
fn traced_dd(expr: &BoolExpr, nvars: u32, probs: &[f64], components: bool) -> DecisionDnnf {
    let cnf = Cnf::from_negated_dnf(expr, nvars);
    let result = Dpll::new(
        &cnf,
        probs.to_vec(),
        DpllOptions {
            record_trace: true,
            components,
            ..Default::default()
        },
    )
    .run();
    DecisionDnnf::from_trace(&result.trace.unwrap())
}

/// Stacks `lanes` probability vectors end to end. Lane 0 is `probs`
/// verbatim; lane `k` is a deterministic perturbation kept inside `[0, 1]`
/// so each lane is a legal leaf-weight assignment.
fn stacked_lanes(probs: &[f64], lanes: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(probs.len() * lanes);
    for lane in 0..lanes {
        let shrink = 1.0 / (1.0 + lane as f64 / 3.0);
        for &p in probs {
            out.push(if lane == 0 {
                p
            } else {
                (p * shrink).clamp(0.0, 1.0)
            });
        }
    }
    out
}

/// Runs `f` under a fresh pool of each size in [`POOL_SIZES`] and asserts
/// all outputs are equal; returns the pool-1 baseline.
fn invariant_under_pools<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
    let baseline = with_pool(&Pool::new(POOL_SIZES[0]), &f);
    for &threads in &POOL_SIZES[1..] {
        let out = with_pool(&Pool::new(threads), &f);
        assert_eq!(out, baseline, "diverged at {threads} threads");
    }
    baseline
}

/// Asserts that `flat.eval` reproduces `tree_bits` exactly and that
/// `flat.eval_batch` at every batch size is lane-for-lane bit-identical to
/// scalar evaluation of each lane.
fn assert_flat_matches(flat: &pdb_kernel::FlatProgram, probs: &[f64], tree_bits: u64, tag: &str) {
    let stride = probs.len();
    assert_eq!(
        flat.eval(probs).to_bits(),
        tree_bits,
        "{tag}: flat vs tree diverged"
    );
    for lanes in BATCH_SIZES {
        let stacked = stacked_lanes(probs, lanes);
        let batched = flat.eval_batch(&stacked, stride);
        assert_eq!(batched.len(), lanes, "{tag}: lane count at B={lanes}");
        for (k, &value) in batched.iter().enumerate() {
            let lane = &stacked[k * stride..(k + 1) * stride];
            assert_eq!(
                value.to_bits(),
                flat.eval(lane).to_bits(),
                "{tag}: batched lane {k} of {lanes} diverged from scalar eval"
            );
        }
    }
}

// ----------------------------------------------- circuit-type equivalence

/// Every circuit type flattens to a program that is bit-identical to its
/// own tree walk, scalar and batched.
#[test]
fn all_circuit_types_flatten_bit_identically() {
    for seed in 0..4 {
        let db = random_db(seed);
        let idx = db.index();
        let probs = probs_of(&db);
        let nvars = probs.len() as u32;
        let expr = hard_lineage(&db);

        let dd = traced_dd(&expr, nvars, &probs, true);
        assert_flat_matches(
            &dd.flatten(),
            &probs,
            dd.probability(&probs).to_bits(),
            &format!("decision-DNNF seed {seed}"),
        );

        let ddnnf = dd.to_ddnnf();
        assert_flat_matches(
            &ddnnf.flatten(),
            &probs,
            ddnnf.probability(&probs).to_bits(),
            &format!("d-DNNF seed {seed}"),
        );

        let fbdd = Fbdd::from_trace(&{
            let cnf = Cnf::from_negated_dnf(&expr, nvars);
            Dpll::new(
                &cnf,
                probs.clone(),
                DpllOptions {
                    record_trace: true,
                    components: false,
                    ..Default::default()
                },
            )
            .run()
            .trace
            .unwrap()
        })
        .unwrap();
        assert_flat_matches(
            &fbdd.flatten(),
            &probs,
            fbdd.probability(&probs).to_bits(),
            &format!("FBDD seed {seed}"),
        );

        let obdd = Obdd::compile(&expr, &order::hierarchical_order(&idx));
        assert_flat_matches(
            &obdd.flatten(),
            &probs,
            obdd.probability(&probs).to_bits(),
            &format!("OBDD seed {seed}"),
        );
    }
}

/// Chunking the same lanes into different batch sizes never changes a
/// lane's bits: 64 lanes evaluated as one B=64 call, as ⌈64/7⌉ B≤7 calls,
/// and as 64 B=1 calls all agree.
#[test]
fn batch_size_never_changes_lane_bits() {
    let db = random_db(11);
    let probs = probs_of(&db);
    let stride = probs.len();
    let expr = hard_lineage(&db);
    let flat = traced_dd(&expr, stride as u32, &probs, true).flatten();

    let stacked = stacked_lanes(&probs, 64);
    let all_at_once = flat.eval_batch(&stacked, stride);

    let mut chunked = Vec::new();
    for chunk in stacked.chunks(7 * stride) {
        chunked.extend(flat.eval_batch(chunk, stride));
    }
    let one_by_one: Vec<f64> = (0..64)
        .map(|k| flat.eval(&stacked[k * stride..(k + 1) * stride]))
        .collect();

    let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&all_at_once), bits(&chunked), "B=64 vs B=7 chunks");
    assert_eq!(bits(&all_at_once), bits(&one_by_one), "B=64 vs B=1 lanes");
}

// -------------------------------------------------- five query kinds

/// Kind 1 — lifted. The engine answer is pool-invariant, and the lifted
/// query's lineage compiled to an OBDD flattens bit-identically.
#[test]
fn lifted_kind_flat_equals_tree() {
    let db = engine_db(4);
    let opts = QueryOptions::default();
    let (bits, method) = invariant_under_pools(|| {
        let a = db
            .query_fo(
                &probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y)").unwrap(),
                &opts,
            )
            .unwrap();
        (a.probability.to_bits(), format!("{:?}", a.method))
    });
    assert_eq!(method, "Lifted");
    assert!(f64::from_bits(bits).is_finite());

    let tdb = random_db(1);
    let probs = probs_of(&tdb);
    let ucq = parse_ucq("R(x), S(x,y)").unwrap();
    let lin = ucq_dnf_lineage(&ucq, &tdb, &tdb.index()).to_expr();
    let obdd = Obdd::compile(&lin, &order::identity_order(probs.len() as u32));
    assert_flat_matches(
        &obdd.flatten(),
        &probs,
        obdd.probability(&probs).to_bits(),
        "lifted-kind OBDD",
    );
}

/// Kind 2 — grounded. The DPLL trace of the hard query lowers to a flat
/// program matching the tree walk, and the engine's grounded answer is
/// pool-invariant.
#[test]
fn grounded_kind_flat_equals_tree() {
    let db = engine_db(4);
    let opts = QueryOptions::default();
    let (_, method) = invariant_under_pools(|| {
        let a = db
            .query_fo(
                &probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y) & T(y)").unwrap(),
                &opts,
            )
            .unwrap();
        (a.probability.to_bits(), format!("{:?}", a.method))
    });
    assert_eq!(method, "Grounded");

    for seed in 4..8 {
        let tdb = random_db(seed);
        let probs = probs_of(&tdb);
        let dd = traced_dd(&hard_lineage(&tdb), probs.len() as u32, &probs, true);
        assert_flat_matches(
            &dd.flatten(),
            &probs,
            dd.probability(&probs).to_bits(),
            &format!("grounded-kind seed {seed}"),
        );
    }
}

/// Kind 3 — approximate. The Karp–Luby estimator (whose per-sample force
/// and first-satisfied scans now run on the flat DNF kernel) is bit-stable
/// across pool sizes, and the Monte-Carlo sampler (flat Boolean forward
/// pass) reproduces a literal `BoolExpr` tree walk bit for bit under the
/// same RNG stream.
#[test]
fn approximate_kind_flat_equals_tree() {
    let db = engine_db(6);
    let opts = QueryOptions {
        exact_budget: 2,
        samples: 20_000,
        ..Default::default()
    };
    let (_, method, std_error) = invariant_under_pools(|| {
        let a = db
            .query_fo(
                &probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y) & T(y)").unwrap(),
                &opts,
            )
            .unwrap();
        (
            a.probability.to_bits(),
            format!("{:?}", a.method),
            a.std_error.map(f64::to_bits),
        )
    });
    assert_eq!(method, "Approximate");
    assert!(std_error.is_some());

    // Monte Carlo: flat kernel vs hand-rolled tree walk, same RNG sequence.
    let tdb = random_db(3);
    let probs = probs_of(&tdb);
    let expr = hard_lineage(&tdb);
    let samples = 5_000;
    let flat_est = monte_carlo::estimate(&expr, &probs, samples, &mut StdRng::seed_from_u64(42));

    let mut rng = StdRng::seed_from_u64(42);
    let vars: Vec<u32> = expr.vars().into_iter().map(|t| t.0).collect();
    let mut assignment = vec![false; probs.len()];
    let mut hits = 0u64;
    for _ in 0..samples {
        for &v in &vars {
            assignment[v as usize] = rng.gen_bool(probs[v as usize].clamp(0.0, 1.0));
        }
        if expr.eval(&|t| assignment[t.0 as usize]) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    assert_eq!(
        flat_est.value.to_bits(),
        mean.to_bits(),
        "flat MC diverged from tree-walk MC"
    );
}

/// Kind 4 — answers-CQ. Per-answer rows are pool-invariant, and each
/// answer's lineage flattens bit-identically.
#[test]
fn answers_kind_flat_equals_tree() {
    let db = engine_db(5);
    let cq = probdb::logic::parse_cq("R(x), S(x,y), T(y)").unwrap();
    let head = [Var::new("x")];
    let opts = QueryOptions::default();
    let rows = invariant_under_pools(|| {
        db.query_answers(&cq, &head, &opts)
            .unwrap()
            .into_iter()
            .map(|r| (r.values, r.probability.to_bits()))
            .collect::<Vec<_>>()
    });
    assert!(!rows.is_empty(), "fixture should produce answer rows");

    let tdb = random_db(6);
    let probs = probs_of(&tdb);
    let dd = traced_dd(&hard_lineage(&tdb), probs.len() as u32, &probs, true);
    assert_flat_matches(
        &dd.flatten(),
        &probs,
        dd.probability(&probs).to_bits(),
        "answers-kind",
    );
}

/// Kind 5 — views. The full lifecycle (build, insert, refresh) is
/// pool-invariant, and the batched what-if path is bit-identical to the
/// stored row probabilities at lane 0 and batch-size-invariant everywhere.
#[test]
fn views_kind_batched_refresh_is_bit_identical() {
    let lifecycle = || {
        let mut db = engine_db(4);
        let mut views = ViewManager::with_options(ViewOptions::default());
        views
            .create(
                "vb",
                ViewDef::boolean("exists x. exists y. R(x) & S(x,y) & T(y)").unwrap(),
                &db,
            )
            .unwrap();
        views
            .create(
                "va",
                ViewDef::answers(&["x".into()], "R(x), S(x,y), T(y)").unwrap(),
                &db,
            )
            .unwrap();
        db.insert("R", [17], 0.35);
        views.on_insert("R", db.relation_version("R"));
        views.refresh_all(&db).unwrap();
        let mut fingerprint = Vec::new();
        for view in views.iter() {
            // One circuit-leaf vector per view row; all rows of these
            // views share the build snapshot's leaf numbering.
            let state = view.to_state();
            let stride = state
                .rows
                .iter()
                .filter_map(|r| r.circuit.as_ref().map(|c| c.probs.len()))
                .max()
                .unwrap_or(0);
            let base: Vec<f64> = state
                .rows
                .iter()
                .filter_map(|r| r.circuit.as_ref())
                .map(|c| c.probs.clone())
                .next()
                .unwrap_or_default();
            assert_eq!(base.len(), stride, "rows share one leaf numbering");
            assert!(stride > 0, "fixture views should be circuit-backed");

            for lanes in BATCH_SIZES {
                let stacked = stacked_lanes(&base, lanes);
                let batched = view.what_if_batch(&stacked, stride);
                let singly: Vec<Option<Vec<f64>>> = (0..lanes)
                    .map(|k| view.what_if_batch(&stacked[k * stride..(k + 1) * stride], stride))
                    .fold(Vec::new(), |mut acc, per_row| {
                        if acc.is_empty() {
                            acc = per_row;
                        } else {
                            for (row, one) in acc.iter_mut().zip(per_row) {
                                if let (Some(all), Some(one)) = (row.as_mut(), one) {
                                    all.extend(one);
                                }
                            }
                        }
                        acc
                    });
                for (row, (b, s)) in batched.iter().zip(&singly).enumerate() {
                    match (b, s) {
                        (Some(b), Some(s)) => {
                            let bits =
                                |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
                            assert_eq!(bits(b), bits(s), "row {row} lanes differ at B={lanes}");
                        }
                        (None, None) => {}
                        _ => panic!("row {row}: backend disagreement across batch sizes"),
                    }
                }
                // Lane 0 is the build snapshot's own probabilities, so it
                // must reproduce the stored row probability bits exactly.
                for (row_state, lanes_of_row) in state.rows.iter().zip(&batched) {
                    if let (Some(_), Some(values)) = (&row_state.circuit, lanes_of_row) {
                        assert_eq!(
                            values[0].to_bits(),
                            row_state.probability.to_bits(),
                            "lane 0 must equal the stored row probability"
                        );
                    }
                }
            }
            let rows = view
                .rows()
                .iter()
                .map(|r| (r.values.clone(), r.probability.to_bits()))
                .collect::<Vec<_>>();
            fingerprint.push((view.name().to_string(), rows));
        }
        fingerprint
    };
    invariant_under_pools(lifecycle);
}

// ------------------------------------------------------------- proptest

/// A random monotone DNF over `n` variables — the lineage shape the traced
/// DPLL accepts (`Cnf::from_negated_dnf` rejects anything else).
fn arb_monotone_dnf(nvars: u32) -> impl Strategy<Value = BoolExpr> {
    prop::collection::vec(prop::collection::vec(0..nvars, 1..4), 1..6).prop_map(|terms| {
        BoolExpr::or_all(
            terms
                .into_iter()
                .map(|t| {
                    BoolExpr::and_all(
                        t.into_iter()
                            .map(|v| BoolExpr::var(probdb::data::TupleId(v)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>(),
        )
    })
}

/// A random Boolean expression over `n` variables (same shape as
/// `tests/proptest_invariants.rs`) — exercised through the OBDD, which
/// compiles arbitrary formulas.
fn arb_expr(nvars: u32, depth: u32) -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(|v| BoolExpr::var(probdb::data::TupleId(v))),
        Just(BoolExpr::TRUE),
        Just(BoolExpr::FALSE),
    ];
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::and_all),
            prop::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::or_all),
            inner.prop_map(BoolExpr::negate),
        ]
    })
}

fn derived_probs(seed: u64, n: usize) -> Vec<f64> {
    let mut probs = Vec::with_capacity(n);
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for _ in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        probs.push((state >> 11) as f64 / (1u64 << 53) as f64);
    }
    probs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On arbitrary formulas and probability vectors, flattened traced
    /// decision-DNNFs and OBDDs agree with their tree walks to the bit,
    /// scalar and batched at every batch size.
    #[test]
    fn random_formulas_flatten_bit_identically(
        dnf in arb_monotone_dnf(6),
        expr in arb_expr(6, 3),
        seed in 0u64..1000,
    ) {
        let probs = derived_probs(seed, 6);
        let dd = traced_dd(&dnf, 6, &probs, true);
        let flat = dd.flatten();
        prop_assert_eq!(flat.eval(&probs).to_bits(), dd.probability(&probs).to_bits());

        let obdd = Obdd::compile(&expr, &order::identity_order(6));
        let flat_obdd = obdd.flatten();
        prop_assert_eq!(
            flat_obdd.eval(&probs).to_bits(),
            obdd.probability(&probs).to_bits()
        );

        for lanes in BATCH_SIZES {
            let stacked = stacked_lanes(&probs, lanes);
            for (flat, tag) in [(&flat, "dd"), (&flat_obdd, "obdd")] {
                let batched = flat.eval_batch(&stacked, 6);
                for (k, &value) in batched.iter().enumerate() {
                    let lane = &stacked[k * 6..(k + 1) * 6];
                    prop_assert_eq!(
                        value.to_bits(),
                        flat.eval(lane).to_bits(),
                        "{} lane {} of {}", tag, k, lanes
                    );
                }
            }
        }
    }
}
