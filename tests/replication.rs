//! Replication property tests: a replica converging on a primary over
//! real TCP must reach **bit-identical** state — same stored-probability
//! bit patterns, same answers across all five query kinds (`query`,
//! `answers`, `classify`, `open`, `view show`) — no matter when it
//! connected, and must keep converging through injected disconnects, torn
//! stream records, stalls, refused dials, a primary checkpoint that
//! truncates the WAL past the replica's position (re-bootstrap), and a
//! graceful primary shutdown.

use probdb::replica::{
    start_replica, Connector, FaultConnector, ReplicaHandle, ReplicaOptions, ReplicaStatus,
    StreamFault, StreamFaults, TcpConnector,
};
use probdb::server::{serve_service, ServerHandle, ServerOptions, Service, ServiceOptions};
use probdb::store::{MemFs, Store, StoreOptions, WalOp};
use probdb::views::persist::ViewDefState;
use probdb::views::ViewManager;
use probdb::{ProbDb, QueryOptions};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The Boolean view definitions ops can create/drop (one safe query, one
/// #P-hard-shaped one) — mirrors `tests/store_recovery.rs`.
const VIEW_DEFS: &[(&str, &str)] = &[
    ("v_safe", "exists x. exists y. R(x) & S(x,y)"),
    ("v_hard", "exists x. exists y. R(x) & S(x,y) & T(y)"),
];

#[derive(Clone, Debug)]
struct RawOp {
    kind: u32,  // 0-1 insert, 2 update, 3 domain, 4 view create, 5 view drop
    rel: usize, // 0 = R(x), 1 = S(x,y), 2 = T(y)
    x: u64,
    y: u64,
    p: f64,
    which: usize, // view slot for create/drop
}

fn arb_raw() -> impl Strategy<Value = RawOp> {
    (
        (0u32..6, 0usize..3, 0u64..3),
        (0u64..3, 1u32..=9, 0usize..2),
    )
        .prop_map(|((kind, rel, x), (y, p, which))| RawOp {
            kind,
            rel,
            x,
            y,
            p: f64::from(p) / 10.0,
            which,
        })
}

fn relation_tuple(r: &RawOp) -> (&'static str, Vec<u64>) {
    match r.rel {
        0 => ("R", vec![r.x]),
        1 => ("S", vec![r.x, r.y]),
        _ => ("T", vec![r.y]),
    }
}

/// Lowers the raw sequence to valid `WalOp`s (no duplicate view create, no
/// drop of an absent view) — same lowering as the recovery test.
fn to_wal_ops(raw: &[RawOp]) -> Vec<WalOp> {
    let mut live = [false, false];
    let mut out = Vec::with_capacity(raw.len());
    for r in raw {
        let (relation, tuple) = relation_tuple(r);
        let op = match r.kind {
            0 | 1 => WalOp::Insert {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
            2 => WalOp::UpdateProb {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
            3 => WalOp::ExtendDomain {
                consts: vec![r.x, r.y],
            },
            4 if !live[r.which] => {
                live[r.which] = true;
                let (name, text) = VIEW_DEFS[r.which];
                WalOp::ViewCreate {
                    name: name.into(),
                    def: ViewDefState::Boolean(text.into()),
                }
            }
            5 if live[r.which] => {
                live[r.which] = false;
                WalOp::ViewDrop {
                    name: VIEW_DEFS[r.which].0.into(),
                }
            }
            _ => WalOp::Insert {
                relation: relation.into(),
                tuple,
                prob: r.p,
            },
        };
        out.push(op);
    }
    out
}

/// Renders an op as the protocol line the primary's service executes —
/// mutations enter through the real command path, exactly like clients.
fn op_line(op: &WalOp) -> String {
    let consts = |cs: &[u64]| cs.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
    match op {
        WalOp::Insert {
            relation,
            tuple,
            prob,
        } => format!("insert {relation} {} {prob}", consts(tuple)),
        WalOp::UpdateProb {
            relation,
            tuple,
            prob,
        } => format!("update {relation} {} {prob}", consts(tuple)),
        WalOp::ExtendDomain { consts: cs } => format!("domain {}", consts(cs)),
        WalOp::ViewCreate {
            name,
            def: ViewDefState::Boolean(text),
        } => format!("view create {name} query {text}"),
        WalOp::ViewCreate {
            name,
            def: ViewDefState::Answers { head, body },
        } => format!("view create {name} answers {} : {body}", head.join(", ")),
        WalOp::ViewDrop { name } => format!("view drop {name}"),
    }
}

fn inline_opts() -> ServiceOptions {
    ServiceOptions {
        query_timeout: Duration::ZERO,
        cache_capacity: 64,
        degraded_samples: 5_000,
        ..ServiceOptions::default()
    }
}

/// A durable primary served over real loopback TCP (MemFs-backed store:
/// checkpoints and WAL behave exactly like on disk, without touching the
/// test machine's filesystem).
fn primary_server(checkpoint_every: u64) -> ServerHandle {
    let fs = Arc::new(MemFs::new());
    let (store, rec) = Store::open(
        fs,
        std::path::Path::new("data"),
        StoreOptions {
            checkpoint_every,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let svc = Service::with_store(rec.db, rec.views, store, inline_opts());
    serve_service(
        svc,
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            query_timeout: Duration::ZERO,
            cache_capacity: 64,
        },
    )
    .unwrap()
}

/// Aggressive timings so faults and reconnects resolve in milliseconds.
fn replica_opts() -> ReplicaOptions {
    ReplicaOptions {
        heartbeat_timeout: Duration::from_millis(800),
        backoff_initial: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
    }
}

/// A read-only replica service with its client thread attached, optionally
/// dialing through the fault harness.
fn start_test_replica(
    addr: std::net::SocketAddr,
    faults: Option<Arc<StreamFaults>>,
) -> (Service, ReplicaHandle, Arc<ReplicaStatus>) {
    let status = Arc::new(ReplicaStatus::new());
    let svc = Service::new_replica(addr.to_string(), Arc::clone(&status), inline_opts());
    let tcp: Box<dyn Connector> = Box::new(TcpConnector::new(addr.to_string()));
    let connector: Box<dyn Connector> = match faults {
        Some(f) => Box::new(FaultConnector::new(tcp, f)),
        None => tcp,
    };
    let handle = start_replica(
        Arc::new(svc.clone()),
        connector,
        Arc::clone(&status),
        replica_opts(),
    );
    (svc, handle, status)
}

/// Polls until the replica has applied everything up to `target_lsn`.
fn wait_caught_up(status: &ReplicaStatus, target_lsn: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while status.next_lsn() < target_lsn {
        assert!(
            Instant::now() < deadline,
            "replica stuck at lsn {} of {target_lsn} (connected={}, \
             bootstraps={}, reconnects={})",
            status.next_lsn(),
            status.connected(),
            status.bootstraps(),
            status.reconnects(),
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Tuple-level equality: every stored probability bit-identical.
fn assert_tuples_identical(got: &ProbDb, want: &ProbDb) {
    assert_eq!(got.version(), want.version(), "db version");
    assert_eq!(
        got.domain_version(),
        want.domain_version(),
        "domain version"
    );
    assert_eq!(got.tuple_db().tuple_count(), want.tuple_db().tuple_count());
    for rel in want.tuple_db().relations() {
        for (t, p) in rel.iter() {
            let g = got.tuple_db().prob(rel.name(), t);
            assert_eq!(g.to_bits(), p.to_bits(), "{}({t})", rel.name());
        }
    }
}

/// View-level equality (query kind 5: `view show`): same views, same
/// staleness, bit-identical row probabilities.
fn assert_views_identical(got: &ViewManager, want: &ViewManager) {
    assert_eq!(got.len(), want.len(), "view count");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.name(), w.name());
        assert_eq!(g.is_stale(), w.is_stale(), "{} staleness", g.name());
        assert_eq!(g.rows().len(), w.rows().len(), "{} rows", g.name());
        for (a, b) in g.rows().iter().zip(w.rows()) {
            assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "{} row probability",
                g.name()
            );
        }
    }
}

/// Query kinds 1-4 (`query`, `answers`, `classify`, `open`): the replica
/// must answer each bit-identically to the primary.
fn assert_queries_identical(got: &ProbDb, want: &ProbDb) {
    let opts = QueryOptions::default();
    for (_, text) in VIEW_DEFS {
        match (got.query(text), want.query(text)) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.probability.to_bits(),
                b.probability.to_bits(),
                "query {text}"
            ),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("query {text}: divergent outcomes {a:?} vs {b:?}"),
        }
    }

    let cq = probdb::logic::parse_cq("R(x), S(x,y)").unwrap();
    let head = [probdb::logic::Var::new("x")];
    match (
        got.query_answers(&cq, &head, &opts),
        want.query_answers(&cq, &head, &opts),
    ) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.len(), b.len(), "answer count");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.values, y.values, "answer bindings");
                assert_eq!(x.probability.to_bits(), y.probability.to_bits());
            }
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("answers: divergent outcomes {a:?} vs {b:?}"),
    }

    let ucq = probdb::logic::parse_ucq("R(x), S(x,y), T(y)").unwrap();
    assert_eq!(
        format!("{:?}", got.classify(&ucq)),
        format!("{:?}", want.classify(&ucq)),
        "classification"
    );

    let fo = probdb::logic::parse_fo("exists x. exists y. R(x) & S(x,y)").unwrap();
    match (
        got.query_open_world(&fo, 0.2, &opts),
        want.query_open_world(&fo, 0.2, &opts),
    ) {
        (Ok((alo, ahi)), Ok((blo, bhi))) => {
            assert_eq!(
                alo.probability.to_bits(),
                blo.probability.to_bits(),
                "open lower"
            );
            assert_eq!(
                ahi.probability.to_bits(),
                bhi.probability.to_bits(),
                "open upper"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("open-world: divergent outcomes {a:?} vs {b:?}"),
    }
}

/// Bit-identity across all five query kinds, end to end.
fn assert_converged(primary: &Service, replica: &Service) {
    let want = primary.db_snapshot();
    let got = replica.db_snapshot();
    assert_tuples_identical(&got, &want);
    assert_queries_identical(&got, &want);
    primary.inspect_views(|pv| replica.inspect_views(|rv| assert_views_identical(rv, pv)));
}

/// Applies ops through the primary's real command path; returns the
/// primary's head LSN afterwards.
fn apply_ops(primary: &Service, ops: &[WalOp]) -> u64 {
    for op in ops {
        let (resp, _) = primary.handle_line(&op_line(op));
        // Updating a tuple that was never inserted is a benign refusal:
        // the primary does not log it, so the replica never sees it.
        assert!(
            !resp.starts_with("error") || resp.contains("not a possible tuple"),
            "primary refused {:?}: {resp}",
            op_line(op)
        );
    }
    primary.store_lsns().expect("primary has a store").1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole guarantee: whatever mutation sequence runs and however
    /// it is split around the replica's connect (bootstrap vs live
    /// stream), the replica converges to bit-identical state across all
    /// five query kinds.
    #[test]
    fn replica_converges_bit_identically_for_any_mutation_split(
        raw in prop::collection::vec(arb_raw(), 1..10),
        split in 0usize..10,
    ) {
        let ops = to_wal_ops(&raw);
        let split = split.min(ops.len());
        let server = primary_server(0);
        let primary = server.service().clone();
        // Some ops land before the replica exists (served via snapshot
        // bootstrap + WAL catch-up) ...
        apply_ops(&primary, &ops[..split]);
        let (replica, handle, status) = start_test_replica(server.local_addr(), None);
        // ... and the rest while it streams live.
        let head = apply_ops(&primary, &ops[split..]);
        wait_caught_up(&status, head);
        assert_converged(&primary, &replica);
        drop(handle);
        server.shutdown();
    }

    /// Fault sweep: a disconnect, torn record, or stall injected at an
    /// arbitrary global read ordinal never prevents convergence — the
    /// client reconnects and resumes from its LSN.
    #[test]
    fn replica_converges_through_a_fault_at_any_stream_position(
        raw in prop::collection::vec(arb_raw(), 4..10),
        ordinal in 0u64..40,
        fault_kind in 0u32..3,
    ) {
        let ops = to_wal_ops(&raw);
        let server = primary_server(0);
        let primary = server.service().clone();
        apply_ops(&primary, &ops[..ops.len() / 2]);
        let faults = Arc::new(StreamFaults::new());
        faults.inject(match fault_kind {
            0 => StreamFault::Disconnect { at: ordinal },
            1 => StreamFault::Torn { at: ordinal, keep: 1 },
            _ => StreamFault::Stall { at: ordinal },
        });
        let (replica, handle, status) =
            start_test_replica(server.local_addr(), Some(Arc::clone(&faults)));
        let head = apply_ops(&primary, &ops[ops.len() / 2..]);
        wait_caught_up(&status, head);
        assert_converged(&primary, &replica);
        drop(handle);
        server.shutdown();
    }
}

/// A replica whose LSN the primary has checkpointed away re-bootstraps
/// from a fresh snapshot automatically — and still lands bit-identical.
#[test]
fn replica_rebootstraps_after_a_primary_checkpoint_truncates_its_position() {
    let server = primary_server(4); // checkpoint every 4 records
    let primary = server.service().clone();
    let head = apply_ops(
        &primary,
        &[
            WalOp::Insert {
                relation: "R".into(),
                tuple: vec![1],
                prob: 0.5,
            },
            WalOp::Insert {
                relation: "S".into(),
                tuple: vec![1, 2],
                prob: 0.8,
            },
        ],
    );
    let (replica, mut handle, status) = start_test_replica(server.local_addr(), None);
    wait_caught_up(&status, head);
    assert_eq!(status.bootstraps(), 1, "initial snapshot bootstrap");
    // Disconnect the replica, then push the primary past a checkpoint so
    // the WAL base advances beyond the replica's LSN.
    handle.stop();
    let head = apply_ops(
        &primary,
        &[
            WalOp::ViewCreate {
                name: "v_safe".into(),
                def: ViewDefState::Boolean(VIEW_DEFS[0].1.into()),
            },
            WalOp::UpdateProb {
                relation: "S".into(),
                tuple: vec![1, 2],
                prob: 0.4,
            },
            WalOp::Insert {
                relation: "T".into(),
                tuple: vec![2],
                prob: 0.3,
            },
        ],
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (base, _) = primary.store_lsns().expect("primary has a store");
        if base > status.next_lsn() {
            break; // the checkpoint ran: the replica's position is gone
        }
        assert!(Instant::now() < deadline, "checkpoint never truncated");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Reconnect with the same status (same position): the primary cannot
    // serve that LSN from its log anymore and must send a snapshot.
    let client = start_replica(
        Arc::new(replica.clone()),
        Box::new(TcpConnector::new(server.local_addr().to_string())),
        Arc::clone(&status),
        replica_opts(),
    );
    wait_caught_up(&status, head);
    assert_eq!(status.bootstraps(), 2, "re-bootstrap after checkpoint");
    assert_converged(&primary, &replica);
    // The view arrived inside the snapshot: its circuit was imported, not
    // recompiled on the replica.
    replica.inspect_views(|v| assert_eq!(v.recompiles(), 0, "snapshot views must not recompile"));
    drop(client);
    server.shutdown();
}

/// Refused dials (a down primary) climb the backoff ladder without giving
/// up; the replica converges once the primary answers again.
#[test]
fn replica_survives_refused_connects_then_catches_up() {
    let server = primary_server(0);
    let primary = server.service().clone();
    let faults = Arc::new(StreamFaults::new());
    faults.inject(StreamFault::RefuseConnects { n: 3 });
    let (replica, handle, status) = start_test_replica(server.local_addr(), Some(faults.clone()));
    let head = apply_ops(
        &primary,
        &[
            WalOp::Insert {
                relation: "R".into(),
                tuple: vec![1],
                prob: 0.5,
            },
            WalOp::Insert {
                relation: "S".into(),
                tuple: vec![1, 2],
                prob: 0.8,
            },
        ],
    );
    wait_caught_up(&status, head);
    assert!(faults.triggered(), "the refusals were exercised");
    assert!(status.reconnects() >= 3, "dials were refused then retried");
    assert_converged(&primary, &replica);
    drop(handle);
    server.shutdown();
}

/// A graceful primary shutdown (the wire `shutdown` command) reaches the
/// replica as an explicit frame: it marks the primary down immediately,
/// keeps serving reads, and keeps retrying in the background.
#[test]
fn replica_marks_primary_down_on_clean_shutdown_and_keeps_serving_reads() {
    let server = primary_server(0);
    let primary = server.service().clone();
    let head = apply_ops(
        &primary,
        &[
            WalOp::Insert {
                relation: "R".into(),
                tuple: vec![1],
                prob: 0.5,
            },
            WalOp::Insert {
                relation: "S".into(),
                tuple: vec![1, 2],
                prob: 0.8,
            },
        ],
    );
    let (replica, handle, status) = start_test_replica(server.local_addr(), None);
    wait_caught_up(&status, head);
    let (resp, _) = primary.handle_line("shutdown");
    assert!(resp.starts_with("shutting down"), "{resp}");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !status.primary_down() {
        assert!(
            Instant::now() < deadline,
            "shutdown frame never reached the replica"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // The replica is down-stream of a dead primary but still answers reads
    // bit-identically to the last replicated state.
    let (resp, _) = replica.handle_line("query exists x. exists y. R(x) & S(x,y)");
    assert!(resp.contains("p = 0.400000"), "{resp}");
    let (resp, keep) = replica.handle_line("insert R 9 0.9");
    assert!(resp.contains("read-only replica"), "{resp}");
    assert!(keep);
    let stats = replica.stats_text();
    assert!(stats.contains("primary_down=true"), "{stats}");
    drop(handle);
    server.join();
}
