#!/usr/bin/env bash
# End-to-end durability smoke test (the CI `persistence` job):
#
#   1. start `probdb-serve --data-dir` on a fresh directory
#   2. insert tuples and create a materialized view over TCP
#   3. kill -9 the server (no graceful shutdown)
#   4. restart it on the same directory
#   5. verify the query answer and the view survived, byte-for-byte
#   6. stop the restarted server with SIGTERM and expect a clean exit
#
# Uses bash's /dev/tcp so the only dependencies are bash + cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-7937}"
BIN="${BIN:-target/release/probdb-serve}"
DATA_DIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DATA_DIR"
}
trap cleanup EXIT

fail() {
    echo "persistence_smoke: FAIL: $*" >&2
    exit 1
}

# Sends each argument as one protocol line and prints every framed
# response; the trailing `quit` makes the server close the session so the
# reader terminates.
send() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf '%s\n' "$@" "quit" >&3
    cat <&3
    exec 3<&- 3>&-
}

wait_listening() {
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    fail "server never started listening on port $PORT"
}

start_server() {
    "$BIN" --addr "127.0.0.1:$PORT" --workers 2 --data-dir "$DATA_DIR" &
    SERVER_PID=$!
    wait_listening
}

[ -x "$BIN" ] || cargo build --release --bin probdb-serve

echo "== first run: populate =="
start_server
send "insert R 1 0.5" \
     "insert S 1 2 0.8" \
     "view create v query exists x. exists y. R(x) & S(x,y)" >/dev/null

echo "== kill -9 =="
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== restart: verify =="
start_server
OUT="$(send "query exists x. exists y. R(x) & S(x,y)" "view list" "view show v")"
echo "$OUT"
grep -q "p = 0.400000" <<<"$OUT" || fail "query answer did not survive the crash"
grep -q "status=fresh" <<<"$OUT" || fail "materialized view did not survive the crash"
[ "$(grep -c "p = 0.400000" <<<"$OUT")" -ge 2 ] || fail "view show does not reproduce the pre-crash probability"

echo "== SIGTERM: graceful drain =="
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    fail "server did not exit within 10s of SIGTERM"
fi
wait "$SERVER_PID" 2>/dev/null || fail "server exited non-zero after SIGTERM"
SERVER_PID=""

echo "persistence_smoke: OK"
