#!/usr/bin/env bash
# End-to-end replication smoke test (the CI `replication` job):
#
#   1. start a durable primary (`--data-dir`) and a read-only replica
#      (`--replica-of`) as two real processes over loopback TCP
#   2. insert tuples and create a materialized view on the primary
#   3. wait until the replica serves the same answers and refuses writes
#   4. kill -9 the primary — the replica must KEEP serving reads
#   5. restart the primary on the same directory, mutate again, and verify
#      the replica catches up to the new answer
#   6. stop both with SIGTERM and expect clean exits
#
# Uses bash's /dev/tcp so the only dependencies are bash + cargo.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY_PORT="${PRIMARY_PORT:-7941}"
REPLICA_PORT="${REPLICA_PORT:-7942}"
BIN="${BIN:-target/release/probdb-serve}"
DATA_DIR="$(mktemp -d)"
PRIMARY_PID=""
REPLICA_PID=""

cleanup() {
    [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
    [ -n "$REPLICA_PID" ] && kill -9 "$REPLICA_PID" 2>/dev/null || true
    rm -rf "$DATA_DIR"
}
trap cleanup EXIT

fail() {
    echo "replication_smoke: FAIL: $*" >&2
    exit 1
}

# Sends each argument as one protocol line to $1 (a port) and prints every
# framed response; the trailing `quit` closes the session.
send_to() {
    local port=$1
    shift
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf '%s\n' "$@" "quit" >&3
    cat <&3
    exec 3<&- 3>&-
}

wait_listening() {
    local port=$1
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$port") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    fail "nothing listening on port $port after 10s"
}

start_primary() {
    "$BIN" --addr "127.0.0.1:$PRIMARY_PORT" --workers 3 --data-dir "$DATA_DIR" &
    PRIMARY_PID=$!
    wait_listening "$PRIMARY_PORT"
}

# Polls the replica until a query returns the expected answer (replication
# is asynchronous; convergence is bounded but not instant).
wait_replica_answer() {
    local expected=$1
    for _ in $(seq 1 100); do
        if send_to "$REPLICA_PORT" "query exists x. exists y. R(x) & S(x,y)" 2>/dev/null \
            | grep -q "$expected"; then
            return 0
        fi
        sleep 0.1
    done
    fail "replica never converged to $expected"
}

[ -x "$BIN" ] || cargo build --release --bin probdb-serve

echo "== start primary and replica =="
start_primary
"$BIN" --addr "127.0.0.1:$REPLICA_PORT" --workers 2 \
    --replica-of "127.0.0.1:$PRIMARY_PORT" &
REPLICA_PID=$!
wait_listening "$REPLICA_PORT"

echo "== populate the primary =="
send_to "$PRIMARY_PORT" \
    "insert R 1 0.5" \
    "insert S 1 2 0.8" \
    "view create v query exists x. exists y. R(x) & S(x,y)" >/dev/null

echo "== replica converges =="
wait_replica_answer "p = 0.400000"
OUT="$(send_to "$REPLICA_PORT" "view show v" "insert R 9 0.9" "stats")"
grep -q "p = 0.400000" <<<"$OUT" || fail "replica view did not materialize"
grep -q "read-only replica" <<<"$OUT" || fail "replica accepted a write"
grep -q "role=replica" <<<"$OUT" || fail "replica stats missing replication line"

echo "== kill -9 the primary: replica keeps serving =="
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=""
sleep 0.5
OUT="$(send_to "$REPLICA_PORT" "query exists x. exists y. R(x) & S(x,y)")"
grep -q "p = 0.400000" <<<"$OUT" || fail "replica stopped serving after primary death"

echo "== restart primary: replica catches up =="
start_primary
send_to "$PRIMARY_PORT" "update S 1 2 0.4" >/dev/null
wait_replica_answer "p = 0.200000"

echo "== SIGTERM both: graceful drain =="
for pid in "$PRIMARY_PID" "$REPLICA_PID"; do
    kill -TERM "$pid"
done
for pid in "$PRIMARY_PID" "$REPLICA_PID"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        fail "process $pid did not exit within 10s of SIGTERM"
    fi
    wait "$pid" 2>/dev/null || fail "process $pid exited non-zero after SIGTERM"
done
PRIMARY_PID=""
REPLICA_PID=""

echo "replication_smoke: OK"
